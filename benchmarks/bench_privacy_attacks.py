"""Privacy evaluation: structural attacks against the published graph.

Not a numbered figure in the paper, but its central guarantee
(Section 2.2 / Theorem 4.4 of [26]): no structural attack identifies a
vertex in Gk with probability above 1/k.  This bench mounts the degree
and 1-neighborhood attacks against every published vertex and the
subgraph attack against a sample, and reports the worst observed
success probability per k.
"""

from _publish_cache import published
from conftest import bench_ks

from repro.attacks import (
    degree_attack,
    neighborhood_attack,
    verify_attack_resistance,
)
from repro.bench import format_series, print_report

DATASET = "DBpedia"  # typed graphs are the interesting attack surface


def test_neighborhood_attack_speed(benchmark):
    data = published(DATASET, "EFF", 3)
    target = data.transform.avt.first_block()[0]
    result = benchmark(lambda: neighborhood_attack(data.transform.gk, target))
    assert result.success_probability <= 1 / 3 + 1e-9


def test_report_attack_resistance(benchmark):
    def run():
        worst_degree, worst_neighborhood, worst_subgraph = [], [], []
        for k in bench_ks():
            data = published(DATASET, "EFF", k)
            gk, avt = data.transform.gk, data.transform.avt
            targets = sorted(gk.vertex_ids())
            worst_degree.append(
                max(degree_attack(gk, t).success_probability for t in targets[:150])
            )
            worst_neighborhood.append(
                max(
                    neighborhood_attack(gk, t).success_probability
                    for t in targets[:150]
                )
            )
            sample = targets[:: max(1, len(targets) // 20)][:20]
            worst_subgraph.append(
                max(verify_attack_resistance(gk, avt, targets=sample).values())
            )
        table = format_series(
            f"[Privacy] worst attack success probability on Gk — {DATASET}",
            "k",
            bench_ks(),
            {
                "degree": worst_degree,
                "1-neighborhood": worst_neighborhood,
                "subgraph": worst_subgraph,
                "bound 1/k": [1.0 / k for k in bench_ks()],
            },
        )
        return table, (worst_degree, worst_neighborhood, worst_subgraph)

    table, (worst_degree, worst_neighborhood, worst_subgraph) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_report(table)

    for i, k in enumerate(bench_ks()):
        bound = 1.0 / k + 1e-9
        assert worst_degree[i] <= bound
        assert worst_neighborhood[i] <= bound
        assert worst_subgraph[i] <= bound
