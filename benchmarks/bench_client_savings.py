"""Section 3's motivating claim: outsourcing saves the client real work.

"the baseline solution already saves the client from executing the
very expensive subgraph matching query herself" — i.e. even the worst
cloud method leaves the client with only the linear-time filter, far
cheaper than running subgraph isomorphism over G locally.

This bench compares, per query: (a) local VF2 matching on G (no cloud)
vs (b) the client-side cost in the EFF pipeline (expand + filter).
"""

import time

from conftest import bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.core import PrivacyPreservingSystem, SystemConfig
from repro.matching import find_subgraph_matches
from repro.workloads import generate_workload, load_dataset

SIZES = (6, 12)
K = 3


def _compare(dataset_name: str):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    rows = []
    totals = [0.0, 0.0]
    for size in SIZES:
        workload = generate_workload(dataset.graph, size, bench_queries(), seed=17)
        system = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(k=K, max_intermediate_results=500_000),
            sample_workload=workload[:6],
        )
        local_seconds = 0.0
        client_seconds = 0.0
        for query in workload:
            started = time.perf_counter()
            local = find_subgraph_matches(query, dataset.graph)
            local_seconds += time.perf_counter() - started
            outcome = system.query(query)
            client_seconds += outcome.metrics.client_seconds
            assert outcome.metrics.result_count == len(local)
        n = len(workload)
        rows.append(
            [dataset_name, size, ms(local_seconds / n), ms(client_seconds / n)]
        )
        totals[0] += local_seconds
        totals[1] += client_seconds
    return rows, totals


def test_local_matching_cost(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    query = generate_workload(dataset.graph, 6, 1, seed=17)[0]
    matches = benchmark(lambda: find_subgraph_matches(query, dataset.graph))
    assert matches


def test_report_client_savings(benchmark):
    def run():
        all_rows = []
        local_total = client_total = 0.0
        for dataset_name in ("Web-NotreDame", "DBpedia", "UK-2002"):
            rows, (local, client) = _compare(dataset_name)
            all_rows.extend(rows)
            local_total += local
            client_total += client
        table = format_table(
            ["dataset", "|E(Q)|", "local matching ms", "pipeline client ms"],
            all_rows,
            title="[Section 3] client cost: local matching vs outsourced filter",
        )
        return table, local_total, client_total

    table, local_total, client_total = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    # the outsourced client does strictly less work than local matching
    assert client_total < local_total
