"""Figure 22 (+ Figure 34): overall end-to-end running time.

cloud + network + client.  Paper shape: EFF has the best end-to-end
time everywhere; BAS is the worst and degrades fastest with k and
|E(Q)| — the headline result of the paper.
"""

from conftest import METHODS, bench_datasets, bench_ks

from repro.bench import format_table, ms, print_report

SIZES_SHOWN = (6, 12)


def test_end_to_end_eff_k3_e6(benchmark, sweep):
    """Timed cell: one full end-to-end query."""
    system = sweep.system("Web-NotreDame", "EFF", 3)
    query = sweep.context("Web-NotreDame").workload(6, 1)[0]
    outcome = benchmark(lambda: system.query(query))
    assert outcome.metrics.total_seconds > 0


def test_report_fig22_overall_time(benchmark, sweep):
    def run() -> str:
        headers = ["dataset", "method"] + [
            f"k={k},|E(Q)|={s}" for k in bench_ks() for s in SIZES_SHOWN
        ]
        rows = []
        for dataset_name in bench_datasets():
            for method in METHODS:
                row = [dataset_name, method]
                for k in bench_ks():
                    for size in SIZES_SHOWN:
                        cell = sweep.cell(dataset_name, method, k, size)
                        row.append(ms(cell.total_seconds))
                rows.append(row)
        return format_table(
            headers, rows, title="[Figure 22] overall running time (ms)"
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # headline shape: EFF best end-to-end on the full-grid aggregate
    from conftest import cells_clean

    keys = [
        (d, m, k, s)
        for d in bench_datasets()
        for m in METHODS
        for k in bench_ks()
        for s in SIZES_SHOWN
    ]
    if cells_clean(sweep, keys):
        totals = {
            method: sum(
                sweep.cell(d, method, k, size).total_seconds
                for d in bench_datasets()
                for k in bench_ks()
                for size in SIZES_SHOWN
            )
            for method in METHODS
        }
        assert totals["EFF"] <= min(totals["RAN"], totals["FSIM"]) * 1.2
        assert totals["EFF"] <= totals["BAS"] * 1.1
