"""Figures 20/21/27: client-side processing time.

Paper shape: client time is orders of magnitude below cloud time and
scales gently with |E(Q)| and k.  EFF beats RAN and FSIM (fewer
candidates to expand/filter); BAS is slightly *better* than EFF at the
client because the cloud already expanded everything — the price is
paid in communication instead (Figure 33).
"""

from conftest import METHODS, bench_datasets, bench_ks, bench_sizes

from repro.bench import format_series, ms, print_report


def test_client_phase_k3_e6(benchmark, sweep):
    """Timed cell: expansion + filtering for one answer."""
    system = sweep.system("Web-NotreDame", "EFF", 3)
    query = sweep.context("Web-NotreDame").workload(6, 1)[0]
    outcome = system.query(query)
    answer = system.cloud.answer(system.client.prepare_query(query))

    def run():
        return system.client.process_answer(query, answer.matches, answer.expanded)

    result = benchmark(run)
    assert len(result.matches) == outcome.metrics.result_count


def test_report_fig20_client_time_vs_size(benchmark, sweep):
    def run() -> str:
        blocks = []
        for dataset_name in bench_datasets():
            series = {
                method: [
                    ms(sweep.cell(dataset_name, method, 3, size).client_seconds)
                    for size in bench_sizes()
                ]
                for method in METHODS
            }
            blocks.append(
                format_series(
                    f"[Figure 20a] client time (ms) vs |E(Q)| — {dataset_name}, k=3",
                    "|E(Q)|",
                    bench_sizes(),
                    series,
                )
            )
            series_k = {
                method: [
                    ms(sweep.cell(dataset_name, method, k, 6).client_seconds)
                    for k in bench_ks()
                ]
                for method in METHODS
            }
            blocks.append(
                format_series(
                    f"[Figure 20b] client time (ms) vs k — {dataset_name}, |E(Q)|=6",
                    "k",
                    bench_ks(),
                    series_k,
                )
            )
        return "\n\n".join(blocks)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape: client time is small next to cloud time for every method
    from conftest import cells_clean

    for dataset_name in bench_datasets():
        for method in METHODS:
            cell = sweep.cell(dataset_name, method, 3, 6)
            assert cell.client_seconds <= cell.cloud_seconds * 2 + 0.005
    # EFF's client work <= FSIM's (fewer candidates), on aggregate
    keys = [
        (d, m, 3, s) for d in bench_datasets() for m in METHODS for s in bench_sizes()
    ]
    if cells_clean(sweep, keys):
        eff = sum(
            sweep.cell(d, "EFF", 3, s).client_seconds
            for d in bench_datasets()
            for s in bench_sizes()
        )
        fsim = sum(
            sweep.cell(d, "FSIM", 3, s).client_seconds
            for d in bench_datasets()
            for s in bench_sizes()
        )
        assert eff <= fsim * 1.5 + 0.005
