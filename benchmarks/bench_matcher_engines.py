"""Substrate quality: reference VF2 matcher vs the bitset engine.

Both matchers implement Definition 2 exactly (equivalence asserted);
the bitset engine precomputes per-graph adjacency/label bitmasks so it
amortizes across queries.  Relevant wherever the library matches
directly on a graph: the correctness oracle, the client-savings
comparison, and any non-outsourced deployment.
"""

import time

from conftest import bench_datasets, bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.matching import find_subgraph_matches, match_key
from repro.matching.bitset import BitsetMatcher
from repro.workloads import generate_workload, load_dataset

SIZES = (4, 8)


def test_bitset_engine(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    matcher = BitsetMatcher(dataset.graph)
    query = generate_workload(dataset.graph, 6, 1, seed=23)[0]
    matches = benchmark(lambda: matcher.find_matches(query))
    assert matches


def test_report_matcher_engines(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            dataset = load_dataset(dataset_name, scale=bench_scale())
            for size in SIZES:
                workload = generate_workload(
                    dataset.graph, size, bench_queries(), seed=23
                )
                started = time.perf_counter()
                reference = [
                    frozenset(match_key(m) for m in find_subgraph_matches(q, dataset.graph))
                    for q in workload
                ]
                reference_seconds = time.perf_counter() - started

                started = time.perf_counter()
                matcher = BitsetMatcher(dataset.graph)
                build_seconds = time.perf_counter() - started

                started = time.perf_counter()
                bitset = [
                    frozenset(match_key(m) for m in matcher.find_matches(q))
                    for q in workload
                ]
                warm_seconds = time.perf_counter() - started

                raw[(dataset_name, size)] = (
                    reference_seconds,
                    build_seconds + warm_seconds,
                    warm_seconds,
                    reference == bitset,
                )
                rows.append(
                    [
                        dataset_name,
                        size,
                        ms(reference_seconds),
                        ms(build_seconds + warm_seconds),
                        ms(warm_seconds),
                        f"{reference_seconds / max(warm_seconds, 1e-9):.1f}x",
                    ]
                )
        table = format_table(
            [
                "dataset",
                "|E(Q)|",
                "reference ms",
                "bitset cold ms",
                "bitset warm ms",
                "warm speedup",
            ],
            rows,
            title="[Substrate] matcher engines (cold = incl. one-time index build)",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for (dataset_name, size), (reference, cold, warm, equal) in raw.items():
        assert equal, f"engines disagree on {dataset_name} size {size}"
        # once the per-graph index is amortized, the bitset engine must
        # be competitive with the reference
        assert warm <= 1.5 * reference + 0.01
