"""Memoized publish runs shared by the publish-time figures (10-13)."""

from __future__ import annotations

from conftest import bench_scale

from repro.core import DataOwner, MethodConfig, PublishedData, SystemConfig
from repro.workloads import load_dataset

_CACHE: dict[tuple[str, str, int], PublishedData] = {}
_DATASETS: dict[str, object] = {}


def dataset_for(name: str):
    if name not in _DATASETS:
        _DATASETS[name] = load_dataset(name, scale=bench_scale())
    return _DATASETS[name]


def published(dataset_name: str, method: str, k: int) -> PublishedData:
    key = (dataset_name, method, k)
    if key not in _CACHE:
        dataset = dataset_for(dataset_name)
        owner = DataOwner(dataset.graph, dataset.schema)
        config = SystemConfig(k=k, method=MethodConfig.from_name(method))
        _CACHE[key] = owner.publish(config)
    return _CACHE[key]
