"""Figure 10 (+ Figure 23): time cost of generating Gk.

Paper shape: the three label-anonymization strategies (EFF, RAN, FSIM)
generate Gk in near-identical time — grouping cost is negligible next
to partitioning + alignment + edge copy — and the cost rises moderately
with k.
"""

from _publish_cache import published
from conftest import GO_METHODS, bench_datasets, bench_ks, bench_scale

from repro.bench import format_series, print_report
from repro.core import DataOwner, SystemConfig
from repro.workloads import load_dataset


def publish_metrics(dataset_name: str, method: str, k: int):
    return published(dataset_name, method, k).metrics


def test_generate_gk_eff_k3(benchmark):
    """Representative timed cell: EFF, k=3, Web-NotreDame analogue."""
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    owner = DataOwner(dataset.graph, dataset.schema)
    config = SystemConfig(k=3)

    result = benchmark(lambda: owner.publish(config))
    assert result.metrics.gk_edges > dataset.graph.edge_count


def test_report_fig10_generation_time(benchmark):
    """Print the Figure 10/23 series: Gk generation time vs k."""

    def run() -> str:
        blocks = []
        for dataset_name in bench_datasets():
            series = {}
            for method in GO_METHODS:
                series[method] = [
                    publish_metrics(dataset_name, method, k).generation_seconds
                    for k in bench_ks()
                ]
            blocks.append(
                format_series(
                    f"[Figure 10] Gk generation time (s) — {dataset_name}",
                    "k",
                    bench_ks(),
                    series,
                )
            )
        return "\n\n".join(blocks)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)
    assert report
