"""Parallel batched query engine: serial loop vs. `query_batch`.

Not a paper figure — this measures the extension of the cloud engine
to concurrent query serving (ISSUE 1).  A workload of 8+ anonymized
queries (k=3) is answered three ways on one published system:

* ``serial``  — the paper's loop, one ``system.query`` after another;
* ``thread``  — ``query_batch`` on a shared ``ThreadPoolExecutor``
  (shared index + locked star cache);
* ``process`` — ``query_batch`` on a fork-based process pool (the
  CPU-bound scaling path; skipped where fork is unavailable).

Assertions: every backend returns *bit-identical* match sets in
submission order, and — on hosts with >= 2 usable cores — a >= 1.5x
throughput gain over the serial wall time with >= 4 workers.  On
single-core runners the speedup assertion is skipped (there is nothing
to parallelize onto) but the equality checks still run.
"""

from __future__ import annotations

import os

import pytest
from conftest import bench_queries

from repro.bench import format_table, print_report
from repro.cloud.parallel import fork_available
from repro.core.options import QueryOptions
from repro.matching import match_key
from repro.obs import Observability, SlidingWindow, format_percent

WORKERS = 4
BATCH_K = 3
BATCH_EDGES = 6


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _batch_workload(sweep, dataset: str = "DBpedia"):
    system = sweep.system(dataset, "EFF", BATCH_K)
    count = max(8, bench_queries())
    queries = sweep.context(dataset).workload(BATCH_EDGES, count)
    return system, queries


def _match_sets(outcomes):
    return [[match_key(m) for m in outcome.matches] for outcome in outcomes]


def test_batch_backends_bit_identical(sweep):
    """Every backend returns exactly the serial loop's match lists."""
    system, queries = _batch_workload(sweep)
    serial = system.query_batch(queries, options=QueryOptions(backend="serial"))
    expected = _match_sets(serial.outcomes)

    threaded = system.query_batch(
        queries, options=QueryOptions(workers=WORKERS, backend="thread")
    )
    assert _match_sets(threaded.outcomes) == expected

    if fork_available():
        forked = system.query_batch(
            queries, options=QueryOptions(workers=WORKERS, backend="process")
        )
        assert _match_sets(forked.outcomes) == expected


def test_batch_throughput_cell(benchmark, sweep):
    """Timed cell: the whole batch through the thread pool.

    Tracing is disabled for the timed runs — this cell measures raw
    engine throughput, the number every perf PR reports against.
    """
    system, queries = _batch_workload(sweep)
    silent = Observability.disabled()

    def run():
        return system.query_batch(
            queries,
            options=QueryOptions(workers=WORKERS, backend="thread"),
            obs=silent,
        )

    outcome = benchmark(run)
    assert outcome.metrics.query_count == len(queries)


def test_report_parallel_engine(sweep):
    system, queries = _batch_workload(sweep)

    serial = system.query_batch(queries, options=QueryOptions(backend="serial"))
    serial_wall = serial.metrics.wall_seconds
    expected = _match_sets(serial.outcomes)

    # cache_hit_rate is None for the process backend (children own the
    # cache copies, the parent-side delta reads zero) — format_percent
    # renders that as "n/a" instead of blowing up in a %-format.
    rows = [
        [
            "serial",
            1,
            f"{serial_wall * 1000:.1f}",
            f"{serial.metrics.throughput_qps:.1f}",
            "1.00x",
            format_percent(serial.metrics.cache_hit_rate),
        ]
    ]
    measured = {}
    backends = ["thread"] + (["process"] if fork_available() else [])
    for backend in backends:
        batch = system.query_batch(
            queries, options=QueryOptions(workers=WORKERS, backend=backend)
        )
        assert _match_sets(batch.outcomes) == expected
        speedup = batch.metrics.speedup_vs(serial_wall)
        measured[backend] = speedup
        rows.append(
            [
                backend,
                batch.metrics.worker_count,
                f"{batch.metrics.wall_seconds * 1000:.1f}",
                f"{batch.metrics.throughput_qps:.1f}",
                f"{speedup:.2f}x",
                format_percent(batch.metrics.cache_hit_rate),
            ]
        )

    print_report(
        format_table(
            ["backend", "workers", "wall ms", "qps", "speedup", "hit rate"],
            rows,
            title=(
                f"parallel batched engine — {len(queries)} queries, "
                f"k={BATCH_K}, |E(Q)|={BATCH_EDGES}, {WORKERS} workers"
            ),
        )
    )

    if _usable_cores() < 2:
        pytest.skip("single-core host: no parallel speedup to assert")
    assert max(measured.values()) >= 1.5, (
        f"expected >=1.5x throughput with {WORKERS} workers, got {measured}"
    )


def test_report_tracing_overhead(sweep):
    """Traced vs. untraced: what does distributed tracing cost?

    Runs the same thread-pool batch twice — once with observability
    fully disabled (the raw-engine configuration of the throughput
    cell above) and once with a recording tracer retaining every span
    — and prints the overhead row.  Gates: the match sets are
    bit-identical with tracing on or off, the tracing-off run really
    does no tracer work (zero spans retained), and turning tracing ON
    never makes the tracing-OFF configuration look slow (the off run
    must stay within noise of the on run — tracing is pay-as-you-go).
    """
    system, queries = _batch_workload(sweep)
    options = QueryOptions(workers=WORKERS, backend="thread")

    silent = Observability.disabled()
    untraced = system.query_batch(queries, options=options, obs=silent)
    assert len(silent.tracer.trace()) == 0  # off means off: no spans

    recording = Observability()
    traced = system.query_batch(queries, options=options, obs=recording)
    assert all(
        outcome.trace is not None and len(outcome.trace) > 0
        for outcome in traced.outcomes
    )
    # bit-identity: the answers do not depend on the tracing grade
    assert _match_sets(traced.outcomes) == _match_sets(untraced.outcomes)

    off_wall = untraced.metrics.wall_seconds
    on_wall = traced.metrics.wall_seconds
    overhead = (on_wall / off_wall - 1.0) * 100 if off_wall > 0 else 0.0
    spans = sum(len(outcome.trace) for outcome in traced.outcomes)
    print_report(
        format_table(
            ["tracing", "wall ms", "qps", "spans", "overhead"],
            [
                [
                    "off",
                    f"{off_wall * 1000:.1f}",
                    f"{untraced.metrics.throughput_qps:.1f}",
                    0,
                    "—",
                ],
                [
                    "on",
                    f"{on_wall * 1000:.1f}",
                    f"{traced.metrics.throughput_qps:.1f}",
                    spans,
                    f"{overhead:+.1f}%",
                ],
            ],
            title=(
                f"tracing overhead — {len(queries)} queries, "
                f"k={BATCH_K}, thread backend, {WORKERS} workers"
            ),
        )
    )

    # generous noise bound: the untraced configuration must not be
    # slower than the traced one beyond run-to-run jitter
    assert off_wall <= on_wall * 2.0, (
        f"tracing-off wall {off_wall:.4f}s vs traced {on_wall:.4f}s — "
        "the disabled path is doing work it should not"
    )


def test_report_steady_state_latency(sweep):
    """Steady-state per-query latency through the SLO window.

    Feeds every outcome's end-to-end seconds into a ``SlidingWindow``
    (the same structure ``repro serve`` exports as
    ``repro_query_seconds_window_*``) and prints the p50/p95/p99 row a
    serving deployment would expose.  The untraced throughput cell
    above stays the authoritative raw-engine number; this row is the
    tail-latency view of the same workload.
    """
    system, queries = _batch_workload(sweep)
    window = SlidingWindow(capacity=256)

    batch = system.query_batch(
        queries, options=QueryOptions(workers=WORKERS, backend="thread")
    )
    for outcome in batch.outcomes:
        window.observe(outcome.metrics.total_seconds)

    snap = window.snapshot()
    ms = lambda v: f"{v * 1000:.2f}"  # noqa: E731
    print_report(
        format_table(
            ["queries", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
            [
                [
                    int(snap["count"]),
                    ms(snap["p50"]),
                    ms(snap["p95"]),
                    ms(snap["p99"]),
                    ms(snap["mean"]),
                ]
            ],
            title=(
                f"steady-state query latency — {len(queries)} queries, "
                f"k={BATCH_K}, |E(Q)|={BATCH_EDGES}, thread backend"
            ),
        )
    )

    assert snap["count"] == len(queries)
    assert 0.0 < snap["p50"] <= snap["p95"] <= snap["p99"]
