"""Shard-count scaling: ``ShardedCloud`` vs the single-server cloud.

Not a paper figure — this measures the scatter-gather extension of the
cloud engine (ISSUE 6).  One BAS-style identity-AVT deployment (k=1
alignment rows, so no k-automorphism build and the graph can be
serving-sized) answers a fixed random-walk query:

* ``single``  — the paper's :class:`~repro.cloud.server.CloudServer`;
* ``shards=N`` — :class:`~repro.cloud.sharding.ShardedCloud` over the
  same graph, scattering the star plan with the ``thread`` and
  fork-``process`` backends.

The cell is *scan-bound* star matching: selective labels keep the
emitted tables small while every candidate center's neighbourhood is
scanned, which is the regime sharding parallelizes (the positional
hash join always runs centrally and is excluded from the speedup by
timing ``star_stats.seconds``).  The process arms are timed *warm*:
the first answer forks the persistent scatter pool
(:class:`~repro.cloud.parallel.PersistentProcessPool`) and repays the
children's copy-on-write faulting; steady-state serving is what the
cell measures.

Assertions: every arm is *bit-identical* to the single server (same
rows, same order — the merge-by-global-center-position guarantee), and
— at full scale (``REPRO_BENCH_SCALE >= 1``) on hosts with >= 2 usable
cores — a >= 1.5x star-phase gain at 4 shards with the thread or
process backend.  The report cell always writes
``BENCH_sharding.json`` at the repo root (the CI shard-scaling smoke
uploads it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import bench_scale

from repro.bench import format_table, ms, print_report
from repro.cloud import CloudServer, ShardedCloud
from repro.cloud.parallel import fork_available
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import AlignmentVertexTable
from repro.workloads import random_walk_query

#: Full-scale cell (REPRO_BENCH_SCALE=1): ~20k vertices, degree ~24,
#: labels selective enough that the single star emits ~29k rows while
#: every candidate center is scanned.  The CI smoke runs SCALE=0.1.
CELL = dict(seed=7, n=20_000, edges_per_vertex=12, labels=6, query_edges=2)
MIN_VERTICES = 2_000
SHARD_COUNTS = (1, 2, 4)
GATE_SHARDS = 4
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cell_vertices() -> int:
    return max(MIN_VERTICES, int(CELL["n"] * bench_scale()))


def _deployment():
    """Identity-AVT deployment: every vertex its own alignment row.

    ``expand_in_cloud=False`` (k=1 — there is nothing to expand), so
    ``answer`` returns exactly the merged-and-joined star tables and
    the star phase dominates the pipeline.
    """
    schema = make_schema(2, 1, CELL["labels"])
    graph = random_attributed_graph(
        schema,
        _cell_vertices(),
        edges_per_vertex=CELL["edges_per_vertex"],
        seed=CELL["seed"],
    )
    avt = AlignmentVertexTable([[v] for v in sorted(graph.vertex_ids())])
    centers = sorted(graph.vertex_ids())
    query = random_walk_query(graph, CELL["query_edges"], seed=CELL["seed"] + 1)
    return graph, avt, centers, query


@pytest.fixture(scope="module")
def deployment():
    return _deployment()


def _sharded(deployment, shards: int, backend: str) -> ShardedCloud:
    graph, avt, centers, _ = deployment
    return ShardedCloud(
        graph,
        avt,
        centers,
        shards=shards,
        backend=backend,
        expand_in_cloud=False,
    )


def _assert_identical(answer, expected) -> None:
    assert answer.table.schema == expected.table.schema
    assert answer.table.rows == expected.table.rows
    assert answer.star_stats.result_sizes == expected.star_stats.result_sizes


def _star_seconds(cloud, query) -> float:
    """Best-of-``REPEATS`` star-phase seconds, after one warmup answer."""
    cloud.answer(query)  # fork/warm pools, caches, allocators
    best = float("inf")
    for _ in range(REPEATS):
        best = min(best, cloud.answer(query).star_stats.seconds)
    return best


def test_shard_counts_bit_identical(deployment):
    """N=1/2/4 shards reproduce the single server's table exactly.

    This is the CI shard-scaling smoke: every shard count and every
    scatter backend against one seeded workload.
    """
    graph, avt, centers, query = deployment
    expected = CloudServer(graph, avt, centers, expand_in_cloud=False).answer(
        query
    )
    assert expected.table.rows, "cell must produce matches to compare"
    backends = ["serial", "thread"] + (
        ["process"] if fork_available() else []
    )
    for shards in SHARD_COUNTS:
        for backend in backends:
            with _sharded(deployment, shards, backend) as cloud:
                _assert_identical(cloud.answer(query), expected)


def test_shard_scatter_cell(benchmark, deployment):
    """Timed cell: one warm scatter-gather answer at 4 shards."""
    graph, avt, centers, query = deployment
    backend = "process" if fork_available() else "thread"
    with _sharded(deployment, GATE_SHARDS, backend) as cloud:
        cloud.answer(query)  # warm the persistent pool
        answer = benchmark(lambda: cloud.answer(query))
        assert answer.table.rows


def test_report_shard_scaling(deployment):
    """Scaling report + ``BENCH_sharding.json``; the full-scale gate."""
    graph, avt, centers, query = deployment
    single = CloudServer(graph, avt, centers, expand_in_cloud=False)
    expected = single.answer(query)
    single_star = _star_seconds(single, query)

    arms = []
    rows = [
        [
            "single",
            "-",
            ms(single_star),
            "1.00x",
            len(expected.table),
        ]
    ]
    backends = ["thread"] + (["process"] if fork_available() else [])
    for shards in SHARD_COUNTS:
        for backend in backends:
            with _sharded(deployment, shards, backend) as cloud:
                answer = cloud.answer(query)
                _assert_identical(answer, expected)
                star = _star_seconds(cloud, query)
            speedup = single_star / star if star else float("inf")
            arms.append(
                {
                    "shards": shards,
                    "backend": backend,
                    "star_seconds": star,
                    "speedup": round(speedup, 3),
                }
            )
            rows.append(
                [
                    f"shards={shards}",
                    backend,
                    ms(star),
                    f"{speedup:.2f}x",
                    len(answer.table),
                ]
            )

    print_report(
        format_table(
            ["arm", "backend", "star ms", "speedup", "rows"],
            rows,
            title=(
                f"shard-count scaling — n={_cell_vertices()}, "
                f"deg~{2 * CELL['edges_per_vertex']}, "
                f"labels={CELL['labels']}, |E(Q)|={CELL['query_edges']}, "
                f"star phase, best of {REPEATS}"
            ),
        )
    )

    gate_arms = [a for a in arms if a["shards"] == GATE_SHARDS]
    best = max(a["speedup"] for a in gate_arms)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "segment": "star matching (scatter-gather)",
                "repeats": REPEATS,
                "scale": bench_scale(),
                "cores": _usable_cores(),
                "bit_identical": True,
                "speedup": best,
                "cell": {**CELL, "n": _cell_vertices()},
                "single_star_seconds": single_star,
                "arms": arms,
            },
            indent=2,
        )
        + "\n"
    )

    if _usable_cores() < 2:
        pytest.skip("single-core host: no parallel speedup to assert")
    if bench_scale() < 1.0:
        pytest.skip(
            "cell scaled below gating size (set REPRO_BENCH_SCALE=1 "
            "to enforce the >= 1.5x shard-scaling gate)"
        )
    assert best >= 1.5, (
        f"expected >= 1.5x star-phase gain at {GATE_SHARDS} shards, "
        f"got {arms}"
    )
