"""Ablation: star-match caching across a repeated workload.

An extension beyond the paper: production query workloads repeat star
shapes (the same "person at a company" sub-pattern appears in many
queries), so the cloud can reuse ``R(S, Go)`` across queries via the
constraint-signature LRU.  Expected shape: on a workload with repeated
shapes the cached server's star-matching time drops, with identical
results.
"""

from conftest import bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.core import PrivacyPreservingSystem, SystemConfig
from repro.matching import match_key
from repro.workloads import generate_workload, load_dataset

K = 3
PASSES = 3  # repeat the workload to expose reuse


def _run(cache_size: int):
    dataset = load_dataset("DBpedia", scale=bench_scale())
    workload = generate_workload(dataset.graph, 6, bench_queries(), seed=8)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=K, star_cache_size=cache_size, max_intermediate_results=500_000),
        sample_workload=workload[:6],
    )
    star_seconds = 0.0
    results = []
    for _ in range(PASSES):
        for query in workload:
            outcome = system.query(query)
            star_seconds += outcome.metrics.star_matching_seconds
            results.append(frozenset(match_key(m) for m in outcome.matches))
    return star_seconds, system.cloud.star_cache.hit_rate, results


def test_cached_query(benchmark):
    dataset = load_dataset("DBpedia", scale=bench_scale())
    workload = generate_workload(dataset.graph, 6, 4, seed=8)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=K, star_cache_size=256),
        sample_workload=workload,
    )
    system.query(workload[0])  # warm
    outcome = benchmark(lambda: system.query(workload[0]))
    assert outcome.metrics.result_count >= 1


def test_report_ablation_cache(benchmark):
    def run():
        cold_seconds, _, cold_results = _run(cache_size=0)
        warm_seconds, hit_rate, warm_results = _run(cache_size=512)
        table = format_table(
            ["configuration", "star matching ms (3 passes)", "cache hit rate"],
            [
                ["no cache", ms(cold_seconds), "-"],
                ["LRU 512", ms(warm_seconds), f"{hit_rate:.2f}"],
            ],
            title="[Ablation] star-match cache on a repeated workload",
        )
        return table, cold_seconds, warm_seconds, cold_results, warm_results

    table, cold, warm, cold_results, warm_results = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_report(table)

    assert cold_results == warm_results  # caching never changes answers
    assert warm <= cold * 1.05  # and does not slow things down
