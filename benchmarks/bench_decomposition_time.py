"""Section 6.3's side claim: query decomposition is sub-millisecond.

"Even when |E(Q)| is as large as 12, the time cost of query
decomposition algorithm is less than 1 ms."  Our exact branch-and-bound
replaces the paper's Gurobi ILP; this bench checks the claim carries
over.
"""

from conftest import bench_datasets

from repro.bench import format_series, ms, print_report

SIZES = (4, 6, 8, 10, 12)


def test_decomposition_12_edges(benchmark, sweep):
    from repro.cloud import decompose_query

    system = sweep.system("Web-NotreDame", "EFF", 3)
    query = sweep.context("Web-NotreDame").workload(12, 1)[0]
    anonymized = system.client.prepare_query(query)
    decomposition = benchmark(
        lambda: decompose_query(anonymized, system.cloud.estimator)
    )
    assert decomposition.covers(anonymized)


def test_report_decomposition_time(benchmark, sweep):
    def run():
        series = {}
        raw = []
        for dataset_name in bench_datasets():
            values = []
            for size in SIZES:
                cell = sweep.cell(dataset_name, "EFF", 3, size)
                values.append(ms(cell._mean("decomposition_seconds")))
            series[dataset_name] = values
            raw.extend(values)
        table = format_series(
            "[Section 6.3] query decomposition time (ms), EFF k=3",
            "|E(Q)|",
            SIZES,
            series,
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    # the paper's claim: < 1 ms at every size, including |E(Q)|=12
    assert all(value < 1.0 for value in raw)
