"""Figure 11 (+ Figure 24): number of noise edges in Gk.

Paper shape: noise-edge count is essentially independent of the label
strategy (the transform never looks at labels) and grows roughly
linearly as k goes from 2 to 6.
"""

from _publish_cache import published
from conftest import GO_METHODS, bench_datasets, bench_ks

from repro.bench import format_series, print_report


def test_noise_edge_count_k3(benchmark):
    """Timed cell: counting the noise edges is free once published."""
    data = published("Web-NotreDame", "EFF", 3)
    count = benchmark(lambda: data.transform.noise_edge_count)
    assert count > 0


def test_report_fig11_noise_edges(benchmark):
    def run() -> str:
        blocks = []
        for dataset_name in bench_datasets():
            series = {
                method: [
                    published(dataset_name, method, k).metrics.noise_edges
                    for k in bench_ks()
                ]
                for method in GO_METHODS
            }
            blocks.append(
                format_series(
                    f"[Figure 11] noise edges in Gk — {dataset_name}",
                    "k",
                    bench_ks(),
                    series,
                )
            )
        return "\n\n".join(blocks)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape assertions: strategy-independent (within 25%), growing in k
    for dataset_name in bench_datasets():
        per_k = {
            k: [published(dataset_name, m, k).metrics.noise_edges for m in GO_METHODS]
            for k in bench_ks()
        }
        for k, values in per_k.items():
            assert max(values) <= 1.25 * max(min(values), 1)
        ks = bench_ks()
        first = min(per_k[ks[0]])
        last = max(per_k[ks[-1]])
        assert last > first
