"""Extension: query-shape sensitivity of the cloud engine.

The paper's workload is random-walk subgraphs; real pattern workloads
skew toward specific topologies.  This bench runs path / star / cycle
queries of equal edge count through the EFF pipeline and reports where
the engine's time goes for each.

Expected shape: star queries decompose into a single star (join-free,
cheapest); paths need the most stars for their size; cycles add a
join-selective closing edge.
"""

from conftest import bench_datasets, bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.core import PrivacyPreservingSystem, SystemConfig
from repro.exceptions import QueryError, ResultBudgetExceeded
from repro.workloads import extract_shape_query, generate_workload, load_dataset

K = 3
SIZE = 4  # edges per query, all shapes
SHAPES = ("path", "star", "cycle")


def _run(dataset_name: str):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    sample = generate_workload(dataset.graph, SIZE, 6, seed=37)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=K, max_intermediate_results=500_000),
        sample_workload=sample,
    )
    per_shape = {}
    for shape in SHAPES:
        cloud = stars = 0.0
        star_count = completed = 0
        for seed in range(bench_queries()):
            try:
                query = extract_shape_query(
                    dataset.graph, shape, SIZE, seed=seed
                )
                metrics = system.query(query).metrics
            except (QueryError, ResultBudgetExceeded):
                continue
            cloud += metrics.cloud_seconds
            stars += metrics.star_matching_seconds
            star_count += metrics.rs_size
            completed += 1
        if completed:
            per_shape[shape] = (
                cloud / completed,
                stars / completed,
                star_count / completed,
                completed,
            )
    return per_shape


def test_star_shape_query(benchmark):
    dataset = load_dataset("DBpedia", scale=bench_scale())
    system = PrivacyPreservingSystem.setup(
        dataset.graph, dataset.schema, SystemConfig(k=K)
    )
    query = extract_shape_query(dataset.graph, "star", SIZE, seed=3)
    outcome = benchmark(lambda: system.query(query))
    assert outcome.metrics.result_count >= 1


def test_report_query_shapes(benchmark):
    def run():
        rows = []
        for dataset_name in bench_datasets():
            per_shape = _run(dataset_name)
            for shape, (cloud, stars, rs, completed) in per_shape.items():
                rows.append(
                    [dataset_name, shape, completed, ms(cloud), ms(stars), round(rs, 1)]
                )
        return format_table(
            ["dataset", "shape", "queries", "cloud ms", "star ms", "|RS|"],
            rows,
            title=f"[Extension] query-shape sensitivity (EFF, k={K}, {SIZE} edges)",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)
    assert "star" in report