"""Figures 14/15/25 (+ 28/29/30): cloud query time vs query size.

Paper shape: EFF is the fastest method at every |E(Q)|; BAS is the
slowest (its search space is all of Gk rather than Go); the EFF-vs-rest
gap widens as |E(Q)| grows, reaching an order of magnitude at
|E(Q)|=12.
"""

from conftest import METHODS, bench_datasets, bench_sizes, completing_query

from repro.bench import format_series, ms, print_report

KS_SHOWN = (3, 5)  # the main-body figures use k=3 and k=5


def test_query_eff_k3_e6(benchmark, sweep):
    """Timed cell: one 6-edge query on the web analogue (EFF, k=3)."""
    system, query = completing_query(sweep, "Web-NotreDame", "EFF", 3, 6)
    outcome = benchmark(lambda: system.query(query))
    assert outcome.metrics.result_count >= 1


def test_report_fig14_query_time_vs_size(benchmark, sweep):
    def run() -> str:
        blocks = []
        for dataset_name in bench_datasets():
            for k in KS_SHOWN:
                series = {
                    method: [
                        ms(sweep.cell(dataset_name, method, k, size).cloud_seconds)
                        for size in bench_sizes()
                    ]
                    for method in METHODS
                }
                blocks.append(
                    format_series(
                        f"[Figure 14] cloud query time (ms) — {dataset_name}, k={k}",
                        "|E(Q)|",
                        bench_sizes(),
                        series,
                    )
                )
        return "\n\n".join(blocks)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape assertions on the aggregate over all datasets, sizes and
    # both k values: EFF never materially slower than any alternative
    # (per-cell noise is tolerated; censored grids are not compared)
    from conftest import cells_clean

    keys = [
        (d, m, k, s)
        for d in bench_datasets()
        for m in METHODS
        for k in KS_SHOWN
        for s in bench_sizes()
    ]
    if cells_clean(sweep, keys):
        totals = {
            method: sum(
                sweep.cell(d, method, k, s).cloud_seconds
                for d in bench_datasets()
                for k in KS_SHOWN
                for s in bench_sizes()
            )
            for method in METHODS
        }
        assert totals["EFF"] <= totals["RAN"] * 1.2
        assert totals["EFF"] <= totals["FSIM"] * 1.1
        assert totals["EFF"] <= totals["BAS"] * 1.1
