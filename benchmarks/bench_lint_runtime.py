"""Lint-runtime guard: the R1-R8 invariant gate must stay cheap.

Not a paper figure — this guards the developer loop.  PR 9 grew
``repro lint`` from syntactic checks into taint dataflow (R6, with
fixpoint call summaries), reachability analysis (R7) and structural
protocol checks (R8); each lands on every commit via
``scripts/check.py`` and the ``lint-invariants`` CI job.  A gate that
creeps toward minutes stops being run locally, so this bench pins the
full-tree wall clock under a deliberately generous ceiling — it fails
on an accidental O(files x functions^2) regression, not on machine
noise.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import lint_paths
from repro.bench import format_table, print_report

REPO = Path(__file__).resolve().parent.parent

#: Generous: the full tree lints in a few seconds on a laptop; only a
#: complexity regression (not noise, not CI jitter) can reach this.
CEILING_SECONDS = 60.0


def test_report_lint_runtime(benchmark):
    def run():
        start = time.perf_counter()
        result = lint_paths(
            [REPO / "src", REPO / "tests", REPO / "benchmarks"]
        )
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["tree", "files", "rules", "wall (s)", "ceiling (s)"],
        [
            [
                "src+tests+benchmarks",
                result.files_checked,
                len(result.rules),
                round(elapsed, 3),
                CEILING_SECONDS,
            ]
        ],
        title="[Guard] repro lint full-tree runtime (R1-R8)",
    )
    print_report(table)
    assert result.files_checked > 200
    assert result.ok, "the shipped tree must lint clean"
    assert elapsed < CEILING_SECONDS, (
        f"lint took {elapsed:.1f}s (> {CEILING_SECONDS}s): a rule has "
        "regressed from per-module to superlinear work"
    )
