"""Ablation: the Rin optimization of Algorithm 2.

Compares the paper's join strategy — keep the anchor star in B1,
return the 1/k-size ``Rin`` slice — against the *straightforward*
strategy it replaces (expand every star through the automorphic
functions and materialize R(Qo, Gk) in the cloud).

Expected shape: the full strategy joins ~k times more anchor tuples
and ships ~k times more bytes; Rin's cloud time and answer size are
strictly better, and the gap grows with k.
"""

from conftest import bench_datasets, bench_scale

from repro.bench import format_table, ms, print_report
from repro.cloud import CloudServer
from repro.core import DataOwner, SystemConfig
from repro.core.protocol import encode_answer
from repro.workloads import generate_workload, load_dataset

KS = (2, 3, 5)


def _setup(dataset_name: str, k: int):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    workload = generate_workload(dataset.graph, 6, 8, seed=4)
    owner = DataOwner(dataset.graph, dataset.schema, workload)
    published = owner.publish(SystemConfig(k=k))
    servers = {
        strategy: CloudServer(
            published.upload_graph,
            published.transform.avt,
            published.center_vertices,
            join_strategy=strategy,
            max_intermediate_results=500_000,
        )
        for strategy in ("rin", "full")
    }
    queries = [published.lct.apply_to_graph(q) for q in workload]
    return servers, queries


def test_rin_join_k3(benchmark):
    """Timed cell: the Rin-strategy cloud answer at k=3."""
    servers, queries = _setup("Web-NotreDame", 3)
    answer = benchmark(lambda: servers["rin"].answer(queries[0]))
    assert not answer.expanded


def test_report_ablation_rin_vs_full(benchmark):
    def run() -> tuple[str, dict]:
        rows = []
        raw: dict = {}
        for dataset_name in bench_datasets():
            for k in KS:
                servers, queries = _setup(dataset_name, k)
                cell = {}
                for strategy, server in servers.items():
                    seconds = 0.0
                    out_bytes = 0
                    tuples = 0
                    for query in queries:
                        answer = server.answer(query)
                        seconds += answer.cloud_seconds
                        order = sorted(query.vertex_ids())
                        out_bytes += len(
                            encode_answer(answer.matches, order, answer.expanded)
                        )
                        tuples += len(answer.matches)
                    cell[strategy] = (seconds, out_bytes, tuples)
                raw[(dataset_name, k)] = cell
                rows.append(
                    [
                        dataset_name,
                        k,
                        ms(cell["rin"][0]),
                        ms(cell["full"][0]),
                        cell["rin"][2],
                        cell["full"][2],
                        cell["rin"][1],
                        cell["full"][1],
                    ]
                )
        table = format_table(
            [
                "dataset",
                "k",
                "rin ms",
                "full ms",
                "rin tuples",
                "full tuples",
                "rin bytes",
                "full bytes",
            ],
            rows,
            title="[Ablation] Rin join vs straightforward full expansion",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for (dataset_name, k), cell in raw.items():
        rin_seconds, rin_bytes, rin_tuples = cell["rin"]
        full_seconds, full_bytes, full_tuples = cell["full"]
        # the cloud materializes exactly k times more tuples without Rin
        assert full_tuples == k * rin_tuples
        assert full_bytes > rin_bytes or full_tuples == 0
