"""Ablation: the label-privacy parameter θ (group size).

The paper fixes θ=2 throughout its evaluation ("The default value of θ
... is 2 in all the experiments"); this ablation sweeps θ to expose the
privacy/performance trade-off it implies: larger groups hide each label
among more alternatives but make every query label group less
selective, inflating the star search space and the candidate sets the
client must filter.
"""

from conftest import bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.core import PrivacyPreservingSystem, SystemConfig
from repro.exceptions import ResultBudgetExceeded
from repro.workloads import generate_workload, load_dataset

THETAS = (2, 3, 4)
K = 3


def _run(theta: int):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    workload = generate_workload(dataset.graph, 6, bench_queries(), seed=21)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=K, theta=theta, max_intermediate_results=500_000),
        sample_workload=workload[:6],
    )
    cloud_seconds = 0.0
    candidates = 0
    results = 0
    completed = 0
    for query in workload:
        try:
            metrics = system.query(query).metrics
        except ResultBudgetExceeded:
            continue
        cloud_seconds += metrics.cloud_seconds
        candidates += metrics.candidate_count
        results += metrics.result_count
        completed += 1
    group_count = system.published.lct.group_count()
    return (
        cloud_seconds / max(completed, 1),
        candidates / max(completed, 1),
        results / max(completed, 1),
        group_count,
    )


def test_theta3_publish(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())

    def run():
        return PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=K, theta=3)
        )

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    system.published.lct.verify()  # every group >= 3 labels


def test_report_ablation_theta(benchmark):
    def run():
        rows = []
        raw = {}
        for theta in THETAS:
            cloud_ms, candidates, results, groups = _run(theta)
            raw[theta] = (cloud_ms, candidates)
            rows.append(
                [theta, groups, ms(cloud_ms), round(candidates, 1), round(results, 1)]
            )
        table = format_table(
            ["theta", "label groups", "cloud ms", "candidates", "exact results"],
            rows,
            title="[Ablation] privacy parameter theta (k=3, Web analogue)",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    # shape: bigger groups -> fewer groups -> more candidate work
    assert raw[THETAS[-1]][1] >= raw[THETAS[0]][1] * 0.9
