"""Section 5.1's δ(k) claim: "δ(k) is far less than 1 when k is small".

δ(k) bounds how much the symmetric row-union inflates a label group's
frequency on Gk relative to the group's raw-label mass on G (the bound
the cost-model derivation of Expression 4 leans on).  The paper asserts
it stays well below 1 for small k; this bench measures it on every
dataset and k.
"""

from _publish_cache import dataset_for, published
from conftest import bench_datasets, bench_ks

from repro.anonymize import measure_delta_k
from repro.bench import format_series, print_report
from repro.graph import compute_statistics


def _delta(dataset_name: str, k: int, aggregate: str = "max") -> float:
    data = published(dataset_name, "EFF", k)
    original_stats = compute_statistics(dataset_for(dataset_name).graph)
    gk_stats = compute_statistics(data.transform.gk)
    return measure_delta_k(original_stats, gk_stats, data.lct, aggregate=aggregate)


def test_measure_delta_k3(benchmark):
    data = published("Web-NotreDame", "EFF", 3)
    original_stats = compute_statistics(dataset_for("Web-NotreDame").graph)
    gk_stats = compute_statistics(data.transform.gk)
    value = benchmark(lambda: measure_delta_k(original_stats, gk_stats, data.lct))
    assert value >= 0.0


def test_report_delta_k(benchmark):
    def run() -> str:
        worst = {
            dataset_name: [_delta(dataset_name, k, "max") for k in bench_ks()]
            for dataset_name in bench_datasets()
        }
        typical = {
            dataset_name: [_delta(dataset_name, k, "mean") for k in bench_ks()]
            for dataset_name in bench_datasets()
        }
        return (
            format_series(
                "[Section 5.1] delta(k), worst group", "k", bench_ks(), worst
            )
            + "\n\n"
            + format_series(
                "[Section 5.1] delta(k), mean over groups", "k", bench_ks(), typical
            )
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # the bound's ceiling holds for the worst group; the paper's
    # "far less than 1 for small k" holds for the typical group
    smallest_k = bench_ks()[0]
    for dataset_name in bench_datasets():
        assert _delta(dataset_name, smallest_k, "mean") < 1.0
        for k in bench_ks():
            assert _delta(dataset_name, k, "max") <= k - 1 + 1e-9
