"""Ablation: label-aware AVT alignment (an extension beyond the paper).

The paper aligns blocks with a BFS ordering (structure only); pairing
similarly-labeled vertices into AVT rows instead makes the symmetric
row-union widen label groups less, which shrinks every star's
candidate set.  Expected shape: fewer star matches (|RS|) and lower
cloud time at k >= 3, for a modest increase in alignment noise edges.
"""

from conftest import bench_datasets, bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.core import PrivacyPreservingSystem, SystemConfig
from repro.exceptions import ResultBudgetExceeded
from repro.workloads import generate_workload, load_dataset

KS = (3, 5)


def _run(dataset_name: str, k: int, aware: bool):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    workload = generate_workload(dataset.graph, 8, bench_queries(), seed=13)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(
            k=k,
            label_aware_alignment=aware,
            max_intermediate_results=500_000,
        ),
        sample_workload=workload[:6],
    )
    cloud_seconds = 0.0
    rs_total = 0
    completed = 0
    for query in workload:
        try:
            metrics = system.query(query).metrics
        except ResultBudgetExceeded:
            continue
        cloud_seconds += metrics.cloud_seconds
        rs_total += metrics.rs_size
        completed += 1
    noise = system.publish_metrics.noise_edges
    if completed == 0:
        return 0.0, 0.0, noise
    return cloud_seconds / completed, rs_total / completed, noise


def test_label_aware_publish(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    config = SystemConfig(k=3, label_aware_alignment=True)

    def run():
        return PrivacyPreservingSystem.setup(dataset.graph, dataset.schema, config)

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    assert system.publish_metrics.gk_edges > 0


def test_report_ablation_alignment(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            for k in KS:
                bfs_ms, bfs_rs, bfs_noise = _run(dataset_name, k, aware=False)
                aware_ms, aware_rs, aware_noise = _run(dataset_name, k, aware=True)
                raw[(dataset_name, k)] = (bfs_rs, aware_rs)
                rows.append(
                    [
                        dataset_name,
                        k,
                        ms(bfs_ms),
                        ms(aware_ms),
                        round(bfs_rs, 1),
                        round(aware_rs, 1),
                        bfs_noise,
                        aware_noise,
                    ]
                )
        table = format_table(
            [
                "dataset",
                "k",
                "BFS ms",
                "label-aware ms",
                "BFS |RS|",
                "label-aware |RS|",
                "BFS noiseE",
                "label-aware noiseE",
            ],
            rows,
            title="[Ablation] AVT alignment: BFS (paper) vs label-aware",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    # aggregate shape: label-aware alignment shrinks |RS|
    total_bfs = sum(pair[0] for pair in raw.values())
    total_aware = sum(pair[1] for pair in raw.values())
    assert total_aware <= total_bfs * 1.05
