"""Ablation: cost-model-driven query decomposition (Definition 6).

Compares the paper's decomposition — an exact minimum *weighted*
vertex cover where weights are the cost model's |R(S)| estimates —
against an unweighted minimum vertex cover (structure-only, blind to
selectivity).

Expected shape: both cover the query, but the cost-model decomposition
feeds fewer star-match tuples into the join (smaller |RS|), which is
exactly what the paper's cost model exists to achieve.
"""

from conftest import bench_datasets, bench_scale

from repro.anonymize import estimator_from_outsourced
from repro.bench import format_table, print_report
from repro.cloud import CloudIndex, decompose_query, match_all_stars
from repro.core import DataOwner, SystemConfig
from repro.workloads import generate_workload, load_dataset


class _UnitEstimator:
    """Estimator stub: every star costs 1 (degenerates Definition 6 to
    an unweighted minimum vertex cover)."""

    def estimate(self, star_graph, center):
        return 1.0


def _setup(dataset_name: str, k: int = 3):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    workload = generate_workload(dataset.graph, 8, 10, seed=6)
    owner = DataOwner(dataset.graph, dataset.schema, workload)
    published = owner.publish(SystemConfig(k=k))
    index = CloudIndex.build(published.upload_graph, published.center_vertices)
    estimator = estimator_from_outsourced(
        published.center_vertices, published.upload_graph, k
    )
    queries = [published.lct.apply_to_graph(q) for q in workload]
    return published, index, estimator, queries


def _total_rs(published, index, queries, estimator) -> int:
    total = 0
    for query in queries:
        decomposition = decompose_query(query, estimator)
        _, stats = match_all_stars(
            query, decomposition.stars, index, published.upload_graph
        )
        total += stats.total_results
    return total


def test_cost_model_decomposition_k3(benchmark):
    """Timed cell: decomposing one query with the cost model."""
    published, index, estimator, queries = _setup("Web-NotreDame")
    decomposition = benchmark(lambda: decompose_query(queries[0], estimator))
    assert decomposition.covers(queries[0])


def test_report_ablation_decomposition(benchmark):
    def run() -> tuple[str, dict]:
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            published, index, estimator, queries = _setup(dataset_name)
            weighted = _total_rs(published, index, queries, estimator)
            unweighted = _total_rs(published, index, queries, _UnitEstimator())
            raw[dataset_name] = (weighted, unweighted)
            rows.append([dataset_name, weighted, unweighted])
        table = format_table(
            ["dataset", "|RS| cost-model", "|RS| unweighted-cover"],
            rows,
            title="[Ablation] decomposition: cost model vs structure-only",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    total_weighted = sum(w for w, _ in raw.values())
    total_unweighted = sum(u for _, u in raw.values())
    # the cost model should not lose to selectivity-blind covering
    assert total_weighted <= total_unweighted * 1.05
