"""Extension: incremental release maintenance vs re-publication.

The paper publishes once; this bench quantifies the two maintenance
strategies the library offers for evolving graphs:

* re-publish — rebuild Gk/Go and re-upload everything;
* incremental — orbit-wise update (`DynamicRelease`) + `GoDelta`
  shipping only the cloud-visible changes.

Expected shape: per-update delta bytes are orders of magnitude below a
re-upload and roughly independent of graph size; update application is
micro-seconds against a full rebuild's milliseconds.
"""

import time

from conftest import bench_scale

from repro.anonymize import build_lct, cost_based_grouping
from repro.bench import format_table, ms, print_report
from repro.core import DataOwner, SystemConfig
from repro.core.protocol import encode_upload
from repro.graph import compute_statistics
from repro.kauto import build_k_automorphic_graph, verify_k_automorphism
from repro.kauto.dynamic import DynamicRelease
from repro.outsource import apply_go_delta
from repro.workloads import load_dataset

UPDATES = 20


def _release(dataset_name: str, k: int):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    lct = build_lct(
        dataset.schema,
        2,
        cost_based_grouping,
        graph_stats=compute_statistics(dataset.graph),
    )
    transform = build_k_automorphic_graph(lct.apply_to_graph(dataset.graph), k, seed=1)
    return dataset, DynamicRelease(dataset.graph.copy(), transform, lct)


def test_incremental_edge_insert(benchmark):
    _, release = _release("DBpedia", 3)
    vertices = sorted(release.original.vertex_ids())
    pairs = [
        (vertices[i], vertices[-(i + 1)])
        for i in range(40)
        if vertices[i] != vertices[-(i + 1)]
        and not release.original.has_edge(vertices[i], vertices[-(i + 1)])
    ]
    iterator = iter(pairs)

    def insert():
        u, v = next(iterator)
        return release.insert_edge(u, v)

    log = benchmark.pedantic(insert, rounds=1, iterations=1)
    assert log.added_edges


def test_report_dynamic_update_cost(benchmark):
    def run():
        rows = []
        raw = {}
        for k in (2, 3, 5):
            dataset, release = _release("DBpedia", k)
            outsourced = release.refresh_outsourced()
            vertices = sorted(release.original.vertex_ids())

            delta_bytes = 0
            incremental_seconds = 0.0
            applied = 0
            for i in range(UPDATES):
                u = vertices[(7 * i) % len(vertices)]
                v = vertices[(11 * i + 3) % len(vertices)]
                if u == v or release.original.has_edge(u, v):
                    continue
                started = time.perf_counter()
                log = release.insert_edge(u, v)
                delta = release.go_delta(log)
                apply_go_delta(outsourced, delta)
                incremental_seconds += time.perf_counter() - started
                delta_bytes += delta.payload_bytes()
                applied += 1

            verify_k_automorphism(release.gk, release.avt)

            started = time.perf_counter()
            owner = DataOwner(release.original, dataset.schema)
            republished = owner.publish(SystemConfig(k=k))
            republish_seconds = time.perf_counter() - started
            full_bytes = len(
                encode_upload(republished.upload_graph, republished.transform.avt)
            )
            raw[k] = (delta_bytes / max(applied, 1), full_bytes)
            rows.append(
                [
                    k,
                    applied,
                    round(delta_bytes / max(applied, 1)),
                    full_bytes,
                    ms(incremental_seconds / max(applied, 1)),
                    ms(republish_seconds),
                ]
            )
        table = format_table(
            [
                "k",
                "updates",
                "delta B/update",
                "re-upload B",
                "incremental ms/update",
                "re-publish ms",
            ],
            rows,
            title="[Extension] incremental maintenance vs re-publication (DBpedia)",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for k, (per_update, full) in raw.items():
        assert per_update < full / 20