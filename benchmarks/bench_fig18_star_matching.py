"""Figure 18 (+ Figure 31): star matching time.

Paper shape: the star matching phase itself is fast (milliseconds);
EFF produces the fastest star matching of the Go-based methods because
its label groups are the most selective; time rises with k and |E(Q)|.
"""

from conftest import GO_METHODS, bench_datasets

from repro.bench import format_table, ms, print_report

CELLS = [(3, 6), (3, 12), (5, 6), (5, 12)]  # (k, |E(Q)|) as in the paper


def test_star_matching_phase_k3_e6(benchmark, sweep):
    """Timed cell: the star matching phase alone."""
    from repro.cloud import match_all_stars
    from repro.cloud.decomposition import decompose_query

    system = sweep.system("Web-NotreDame", "EFF", 3)
    query = sweep.context("Web-NotreDame").workload(6, 1)[0]
    anonymized = system.client.prepare_query(query)
    decomposition = decompose_query(anonymized, system.cloud.estimator)

    def run():
        return match_all_stars(
            anonymized, decomposition.stars, system.cloud.index, system.cloud.graph
        )

    results, stats = benchmark(run)
    assert stats.total_results >= 0


def test_report_fig18_star_matching_time(benchmark, sweep):
    def run() -> str:
        headers = ["dataset", "method"] + [f"k={k},|E(Q)|={s}" for k, s in CELLS]
        rows = []
        for dataset_name in bench_datasets():
            for method in GO_METHODS:
                row = [dataset_name, method]
                for k, size in CELLS:
                    cell = sweep.cell(dataset_name, method, k, size)
                    row.append(ms(cell.star_matching_seconds))
                rows.append(row)
        return format_table(
            headers, rows, title="[Figure 18] star matching time (ms)"
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape: EFF's star matching is no slower than FSIM's on aggregate
    from conftest import cells_clean

    keys = [
        (d, m, k, s) for d in bench_datasets() for m in GO_METHODS for k, s in CELLS
    ]
    if cells_clean(sweep, keys):
        eff = sum(
            sweep.cell(d, "EFF", k, s).star_matching_seconds
            for d in bench_datasets()
            for k, s in CELLS
        )
        fsim = sum(
            sweep.cell(d, "FSIM", k, s).star_matching_seconds
            for d in bench_datasets()
            for k, s in CELLS
        )
        assert eff <= fsim * 1.25
