"""Ablation: the VBV/LBV bit-vector index (Figure 7).

Star matching with the full index vs with each half disabled:

* no VBV — candidate centers come from a linear label scan of B1;
* no LBV — no neighbourhood pruning before leaf enumeration;
* neither — plain scan-and-enumerate.

Expected shape: the full index is fastest; results are identical in
all configurations (asserted).
"""

import time

from conftest import bench_datasets, bench_queries, bench_scale

from repro.anonymize import estimator_from_outsourced
from repro.bench import format_table, ms, print_report
from repro.cloud import CloudIndex, decompose_query
from repro.cloud.star_matching import match_star
from repro.core import DataOwner, SystemConfig
from repro.matching import match_key
from repro.workloads import generate_workload, load_dataset

K = 3
CONFIGS = {
    "full index": dict(use_vbv=True, use_lbv=True),
    "no LBV": dict(use_vbv=True, use_lbv=False),
    "no VBV": dict(use_vbv=False, use_lbv=True),
    "no index": dict(use_vbv=False, use_lbv=False),
}


def _setup(dataset_name: str):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    workload = generate_workload(dataset.graph, 8, bench_queries(), seed=19)
    owner = DataOwner(dataset.graph, dataset.schema, workload)
    published = owner.publish(SystemConfig(k=K))
    index = CloudIndex.build(published.upload_graph, published.center_vertices)
    estimator = estimator_from_outsourced(
        published.center_vertices, published.upload_graph, K
    )
    stars = []
    for query in workload:
        anonymized = published.lct.apply_to_graph(query)
        decomposition = decompose_query(anonymized, estimator)
        for star in decomposition.stars:
            stars.append((anonymized, star))
    return published, index, stars


def test_full_index_star_matching(benchmark):
    published, index, stars = _setup("Web-NotreDame")
    query, star = stars[0]
    matches = benchmark(
        lambda: match_star(query, star, index, published.upload_graph)
    )
    assert isinstance(matches, list)


def test_report_ablation_index(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            published, index, stars = _setup(dataset_name)
            per_config = {}
            for config_name, flags in CONFIGS.items():
                started = time.perf_counter()
                keys = []
                for query, star in stars:
                    matches = match_star(
                        query, star, index, published.upload_graph, **flags
                    )
                    keys.append(frozenset(match_key(m) for m in matches))
                per_config[config_name] = (time.perf_counter() - started, keys)
            raw[dataset_name] = per_config
            rows.append(
                [dataset_name]
                + [ms(per_config[name][0]) for name in CONFIGS]
            )
        table = format_table(
            ["dataset", *CONFIGS.keys()],
            rows,
            title=f"[Ablation] Figure 7 index: star matching time (ms), k={K}",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for dataset_name, per_config in raw.items():
        reference = per_config["full index"][1]
        for config_name, (_, keys) in per_config.items():
            assert keys == reference, f"{config_name} changed results"
        # the full index is not slower than running with no index at all
        assert per_config["full index"][0] <= per_config["no index"][0] * 1.1