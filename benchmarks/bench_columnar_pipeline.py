"""Columnar pipeline A/B/C: dict vs tuple-row vs vector kernels.

Not a paper figure — this measures the representation changes behind
the ``MatchTable`` pipeline (ISSUE 5 introduced the tuple-row tables,
ISSUE 10 the flat int64 columns + vector kernels).  The timed segment
is the whole per-query pipeline downstream of decomposition, broken
into the four phases the vectorization targets:

* ``match``  — Algorithm 1 star matching over Go (CSR adjacency +
  sorted-candidate intersection on the vector arm);
* ``join``   — Algorithm 2 (positional hash join; packed-key argsort
  join on the vector arm);
* ``expand`` — the client AVT expansion (dense LUT gathers on the
  vector arm);
* ``filter`` — Algorithm 3 (bulk CSR membership tests on the vector
  arm).

Three arms, all asserted bit-identical:

* ``legacy`` — the dict kernels (``match_star``,
  ``join_star_matches_legacy``, ``expand_rin``, ``ClientFilter.filter``);
* ``tuple``  — the table pipeline pinned to tuple rows via
  ``vec.override("rows")``;
* ``vector`` — the table pipeline in serving (``auto``) mode: flat
  columns + numpy kernels where profitable, the tuple kernels below
  ``MIN_VECTOR_ROWS`` or without numpy.

Two cells:

* ``workload`` — the parallel-engine benchmark workload (DBpedia, EFF,
  k=3, |E(Q)|=6).  Label selectivity keeps candidate sets tiny there,
  so per-query setup dominates; the gate is the regression bound
  "vector is never slower than 0.9x legacy".
* ``dense``    — a fixed-seed low-selectivity deployment where the
  join materializes tens of thousands of intermediate rows, i.e. the
  regime the vector kernels target.  Gate: >= 6x with numpy (>= 2x on
  the array('q') fallback, where only the storage changes).

The report cell writes both measurements — including the per-phase
breakdown of every arm — to ``BENCH_columnar.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from conftest import bench_queries

from repro.anonymize import estimator_from_outsourced
from repro.bench import format_table, ms, print_report
from repro.client.expansion import expand_rin, expand_rin_table
from repro.client.filtering import ClientFilter
from repro.cloud import (
    CloudIndex,
    decompose_query,
    join_star_matches_legacy,
    join_star_tables,
)
from repro.cloud.star_matching import match_star, match_star_table
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.matching import vec
from repro.outsource import build_outsourced_graph
from repro.workloads import random_walk_query

DATASET = "DBpedia"
METHOD = "EFF"
K = 3
EDGES = 6
REPEATS = 5
#: The workload segment is ~1-2ms per pass, so its best-of needs far
#: more passes than the dense cell (0.5s a pass) for a stable ratio.
WORKLOAD_REPEATS = 25
DENSE = dict(seed=7, n=200, edges_per_vertex=3, k=3, query_edges=3, labels=2)
DENSE_BUDGET = 2_000_000
PHASES = ("match", "join", "expand", "filter")
#: Dense-cell gate: the vector kernels must clear 6x over the dict
#: pipeline; without numpy only the flat storage remains, so the bar is
#: the tuple-representation one.
DENSE_GATE = 6.0 if vec.HAVE_NUMPY else 2.0
WORKLOAD_GATE = 0.9
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_columnar.json"


def _workload_cells(sweep):
    """Per-query segment inputs from the parallel-engine workload.

    Each cell carries everything the timed segment needs: the
    anonymized query and cloud index/graph for star matching, the AVTs
    for the join and the client expansion, and the client graph +
    original query for Algorithm 3.
    """
    system = sweep.system(DATASET, METHOD, K)
    cloud = system.cloud
    count = max(8, bench_queries())
    queries = sweep.context(DATASET).workload(EDGES, count)
    cells = []
    for query in queries:
        anonymized = system.client.prepare_query(query)
        decomposition = decompose_query(anonymized, cloud.estimator)
        cells.append(
            dict(
                query=query,
                anonymized=anonymized,
                index=cloud.index,
                data=cloud.graph,
                graph=system.client.graph,
                avt=cloud.avt,
                client_avt=system.client.avt,
                budget=cloud.max_intermediate_results,
                stars=decomposition.stars,
            )
        )
    return cells


def _dense_cells():
    """One fixed-seed low-selectivity deployment (dense candidates)."""
    schema = make_schema(2, 1, DENSE["labels"])
    graph = random_attributed_graph(
        schema,
        DENSE["n"],
        edges_per_vertex=DENSE["edges_per_vertex"],
        seed=DENSE["seed"],
    )
    query = random_walk_query(graph, DENSE["query_edges"], seed=DENSE["seed"] + 1)
    transform = build_k_automorphic_graph(graph, DENSE["k"], seed=DENSE["seed"])
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    index = CloudIndex.build(outsourced.graph, outsourced.block_vertices)
    estimator = estimator_from_outsourced(
        outsourced.block_vertices, outsourced.graph, DENSE["k"]
    )
    decomposition = decompose_query(query, estimator)
    return [
        dict(
            query=query,
            anonymized=query,
            index=index,
            data=outsourced.graph,
            graph=graph,
            avt=transform.avt,
            client_avt=transform.avt,
            budget=DENSE_BUDGET,
            stars=decomposition.stars,
        )
    ]


def _run_legacy(cells):
    """The dict-kernel pipeline, timed per phase."""
    phases = dict.fromkeys(PHASES, 0.0)
    results = []
    clock = time.perf_counter
    for cell in cells:
        t0 = clock()
        matches = {
            star.center: match_star(
                cell["anonymized"],
                star,
                cell["index"],
                cell["data"],
                max_results=cell["budget"],
            )
            for star in cell["stars"]
        }
        t1 = clock()
        rin, _ = join_star_matches_legacy(
            cell["stars"],
            matches,
            cell["avt"],
            max_intermediate=cell["budget"],
        )
        t2 = clock()
        candidates = expand_rin(rin, cell["client_avt"]).matches
        t3 = clock()
        filtered = ClientFilter(cell["graph"], cell["query"]).filter(candidates)
        t4 = clock()
        phases["match"] += t1 - t0
        phases["join"] += t2 - t1
        phases["expand"] += t3 - t2
        phases["filter"] += t4 - t3
        results.append(filtered.matches)
    return phases, results


def _run_tables(cells):
    """The table pipeline under the *active* vec mode, timed per phase.

    The closing ``to_matches`` adapter (needed only to compare against
    the dict arm) runs outside the timed phases.
    """
    phases = dict.fromkeys(PHASES, 0.0)
    tables = []
    clock = time.perf_counter
    for cell in cells:
        t0 = clock()
        star_tables = {
            star.center: match_star_table(
                cell["anonymized"],
                star,
                cell["index"],
                cell["data"],
                max_results=cell["budget"],
            )
            for star in cell["stars"]
        }
        t1 = clock()
        rin, _ = join_star_tables(
            cell["stars"],
            star_tables,
            cell["avt"],
            max_intermediate=cell["budget"],
        )
        t2 = clock()
        candidates = expand_rin_table(rin, cell["client_avt"]).table
        t3 = clock()
        filtered = ClientFilter(cell["graph"], cell["query"]).filter_table(
            candidates
        )
        t4 = clock()
        phases["match"] += t1 - t0
        phases["join"] += t2 - t1
        phases["expand"] += t3 - t2
        phases["filter"] += t4 - t3
        tables.append(filtered.table)
    return phases, [table.to_matches() for table in tables]


def _run_tuple(cells):
    with vec.override("rows"):
        return _run_tables(cells)


def _ab(cells, repeats=REPEATS) -> dict:
    """Interleaved rounds; speedups are medians of per-round ratios.

    The three arms run back-to-back within every round (not in three
    separate windows), so slow drift — thermal throttling, frequency
    scaling, cache state — biases them equally instead of penalizing
    whichever arm runs last.  The reported speedup is the **median**
    over rounds of the round's ``legacy/vector`` ratio: pairing the
    ratios per round cancels the drift, and the median is robust to a
    single noisy round in a way a ratio of two best-of minima is not.
    The per-phase breakdown comes from each arm's best round.
    """
    arms = (
        ("legacy", _run_legacy),
        ("tuple", _run_tuple),
        ("vector", _run_tables),
    )
    best: dict = {}
    results: dict = {}
    totals: dict = {name: [] for name, _ in arms}
    for _ in range(repeats):
        for name, fn in arms:
            phases, pass_results = fn(cells)
            totals[name].append(sum(phases.values()))
            if name not in best or sum(phases.values()) < sum(
                best[name].values()
            ):
                best[name], results[name] = phases, pass_results
    legacy_phases, legacy_results = best["legacy"], results["legacy"]
    tuple_phases, tuple_results = best["tuple"], results["tuple"]
    vector_phases, vector_results = best["vector"], results["vector"]
    assert tuple_results == legacy_results
    assert vector_results == legacy_results
    legacy_seconds = sum(legacy_phases.values())
    tuple_seconds = sum(tuple_phases.values())
    vector_seconds = sum(vector_phases.values())
    return {
        "queries": len(cells),
        "legacy_seconds": legacy_seconds,
        "tuple_seconds": tuple_seconds,
        "vector_seconds": vector_seconds,
        "speedup": round(
            median(
                lg / vc
                for lg, vc in zip(totals["legacy"], totals["vector"])
            ),
            3,
        ),
        "tuple_speedup": round(
            median(
                lg / tp
                for lg, tp in zip(totals["legacy"], totals["tuple"])
            ),
            3,
        ),
        "phases": {
            "legacy": {p: round(legacy_phases[p], 6) for p in PHASES},
            "tuple": {p: round(tuple_phases[p], 6) for p in PHASES},
            "vector": {p: round(vector_phases[p], 6) for p in PHASES},
        },
        "exact_matches": sum(len(r) for r in legacy_results),
        "bit_identical": True,
    }


def test_workload_bit_identical(sweep):
    """All three arms return exactly the same R(Q, G) for every query."""
    cells = _workload_cells(sweep)
    _, legacy = _run_legacy(cells)
    assert _run_tuple(cells)[1] == legacy
    assert _run_tables(cells)[1] == legacy


def test_dense_bit_identical():
    cells = _dense_cells()
    _, legacy = _run_legacy(cells)
    assert _run_tuple(cells)[1] == legacy
    assert _run_tables(cells)[1] == legacy


def test_columnar_join_cell(benchmark):
    """Timed cell: the vector-arm pipeline segment (dense)."""
    cells = _dense_cells()
    results = benchmark(lambda: _run_tables(cells)[1])
    assert results and results[0]


def test_report_columnar_vs_legacy(sweep):
    """A/B/C report + ``BENCH_columnar.json``; the CI perf-smoke gate."""
    measured = {
        "workload": _ab(_workload_cells(sweep), repeats=WORKLOAD_REPEATS),
        "dense": _ab(_dense_cells()),
    }
    rows = []
    for name, cell in measured.items():
        rows.append(
            [
                name,
                cell["queries"],
                ms(cell["legacy_seconds"]),
                ms(cell["tuple_seconds"]),
                ms(cell["vector_seconds"]),
                f"{cell['speedup']:.2f}x",
                cell["exact_matches"],
            ]
        )
    print_report(
        format_table(
            ["cell", "queries", "dict ms", "tuple ms", "vector ms", "speedup",
             "exact"],
            rows,
            title=(
                "match+join+expansion+filter A/B/C — "
                f"workload: {DATASET}/{METHOD} k={K} |E(Q)|={EDGES}; "
                f"dense: n={DENSE['n']} k={DENSE['k']} seed={DENSE['seed']}; "
                f"best of {REPEATS}; backend={vec.backend()}"
            ),
        )
    )
    phase_rows = [
        [name, arm] + [ms(cell["phases"][arm][p]) for p in PHASES]
        for name, cell in measured.items()
        for arm in ("legacy", "tuple", "vector")
    ]
    print_report(
        format_table(
            ["cell", "arm", *(f"{p} ms" for p in PHASES)],
            phase_rows,
            title="per-phase breakdown (best pass)",
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "segment": "match+join+expansion+filter",
                "repeats": REPEATS,
                "backend": vec.backend(),
                "numpy": vec.HAVE_NUMPY,
                "bit_identical": True,
                "speedup": measured["dense"]["speedup"],
                "gates": {
                    "workload_min": WORKLOAD_GATE,
                    "dense_min": DENSE_GATE,
                },
                "cells": {
                    "workload": {
                        "dataset": DATASET,
                        "method": METHOD,
                        "k": K,
                        "edge_count": EDGES,
                        **measured["workload"],
                    },
                    "dense": {**DENSE, **measured["dense"]},
                },
            },
            indent=2,
        )
        + "\n"
    )

    # CI perf-smoke gates: the regression bound on the selective
    # workload (vector never below 0.9x of the dict pipeline) and the
    # target in the dense-candidate regime the vector kernels exist for.
    assert measured["workload"]["speedup"] >= WORKLOAD_GATE, (
        f"vector arm regressed on the workload cell: {measured}"
    )
    assert measured["dense"]["speedup"] >= DENSE_GATE, (
        f"expected >= {DENSE_GATE}x on the dense cell, got {measured}"
    )
