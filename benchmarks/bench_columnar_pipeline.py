"""Columnar pipeline A/B: dict kernels vs. tuple-row tables (ISSUE 5).

Not a paper figure — this measures the representation change behind
the columnar ``MatchTable`` pipeline.  Star matching over Go is run
once per cell (its output is the shared input to both arms); the timed
segment is everything downstream of it:

* ``legacy``   — Algorithm 2 via ``join_star_matches_legacy`` (dict
  merges per row), client expansion via ``expand_rin`` (dict remaps),
  Algorithm 3 via ``ClientFilter.filter`` (dict scans);
* ``columnar`` — ``join_star_tables`` (positional hash join),
  ``expand_rin_table`` (flat id-remap LUTs), ``filter_table``
  (precomputed column-pair edge checks).

Two cells, both asserted bit-identical:

* ``workload`` — the parallel-engine benchmark workload (DBpedia, EFF,
  k=3, |E(Q)|=6).  Label selectivity keeps candidate sets tiny there
  (a few rows per query), so per-query setup dominates and the gate is
  only "columnar is never slower" (the CI perf-smoke step).
* ``dense``    — a fixed-seed low-selectivity deployment where the
  join materializes tens of thousands of intermediate rows, i.e. the
  regime the representation change targets.  Gate: >= 2x.

The report cell writes both measurements to ``BENCH_columnar.json`` at
the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_queries

from repro.anonymize import estimator_from_outsourced
from repro.bench import format_table, ms, print_report
from repro.client.expansion import expand_rin, expand_rin_table
from repro.client.filtering import ClientFilter
from repro.cloud import (
    CloudIndex,
    decompose_query,
    join_star_matches_legacy,
    join_star_tables,
)
from repro.cloud.star_matching import match_star_table
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.outsource import build_outsourced_graph
from repro.workloads import random_walk_query

DATASET = "DBpedia"
METHOD = "EFF"
K = 3
EDGES = 6
REPEATS = 5
DENSE = dict(seed=7, n=200, edges_per_vertex=3, k=3, query_edges=3, labels=2)
DENSE_BUDGET = 2_000_000
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_columnar.json"


def _workload_cells(sweep):
    """Per-query segment inputs from the parallel-engine workload.

    Each cell carries the original query, the client AVT/graph, the
    star list, the columnar star tables, and their dict-form twins
    (``to_matches`` is the boundary adapter, so both arms consume
    byte-for-byte the same star matching output).
    """
    system = sweep.system(DATASET, METHOD, K)
    cloud = system.cloud
    count = max(8, bench_queries())
    queries = sweep.context(DATASET).workload(EDGES, count)
    cells = []
    for query in queries:
        anonymized = system.client.prepare_query(query)
        decomposition = decompose_query(anonymized, cloud.estimator)
        tables = {
            star.center: match_star_table(
                anonymized,
                star,
                cloud.index,
                cloud.graph,
                max_results=cloud.max_intermediate_results,
            )
            for star in decomposition.stars
        }
        matches = {c: t.to_matches() for c, t in tables.items()}
        cells.append(
            dict(
                query=query,
                graph=system.client.graph,
                avt=cloud.avt,
                client_avt=system.client.avt,
                budget=cloud.max_intermediate_results,
                stars=decomposition.stars,
                tables=tables,
                matches=matches,
            )
        )
    return cells


def _dense_cells():
    """One fixed-seed low-selectivity deployment (dense candidates)."""
    schema = make_schema(2, 1, DENSE["labels"])
    graph = random_attributed_graph(
        schema,
        DENSE["n"],
        edges_per_vertex=DENSE["edges_per_vertex"],
        seed=DENSE["seed"],
    )
    query = random_walk_query(graph, DENSE["query_edges"], seed=DENSE["seed"] + 1)
    transform = build_k_automorphic_graph(graph, DENSE["k"], seed=DENSE["seed"])
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    index = CloudIndex.build(outsourced.graph, outsourced.block_vertices)
    estimator = estimator_from_outsourced(
        outsourced.block_vertices, outsourced.graph, DENSE["k"]
    )
    decomposition = decompose_query(query, estimator)
    tables = {
        star.center: match_star_table(query, star, index, outsourced.graph)
        for star in decomposition.stars
    }
    return [
        dict(
            query=query,
            graph=graph,
            avt=transform.avt,
            client_avt=transform.avt,
            budget=DENSE_BUDGET,
            stars=decomposition.stars,
            tables=tables,
            matches={c: t.to_matches() for c, t in tables.items()},
        )
    ]


def _run_legacy(cells):
    results = []
    for cell in cells:
        rin, _ = join_star_matches_legacy(
            cell["stars"],
            cell["matches"],
            cell["avt"],
            max_intermediate=cell["budget"],
        )
        candidates = expand_rin(rin, cell["client_avt"]).matches
        results.append(
            ClientFilter(cell["graph"], cell["query"]).filter(candidates).matches
        )
    return results


def _run_columnar(cells):
    results = []
    for cell in cells:
        rin, _ = join_star_tables(
            cell["stars"],
            cell["tables"],
            cell["avt"],
            max_intermediate=cell["budget"],
        )
        candidates = expand_rin_table(rin, cell["client_avt"]).table
        results.append(
            ClientFilter(cell["graph"], cell["query"])
            .filter_table(candidates)
            .table.to_matches()
        )
    return results


def _timed(fn, cells) -> tuple[float, list]:
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        results = fn(cells)
        best = min(best, time.perf_counter() - started)
    return best, results


def _ab(cells) -> dict:
    legacy_seconds, legacy_results = _timed(_run_legacy, cells)
    columnar_seconds, columnar_results = _timed(_run_columnar, cells)
    assert columnar_results == legacy_results
    return {
        "queries": len(cells),
        "legacy_seconds": legacy_seconds,
        "columnar_seconds": columnar_seconds,
        "speedup": round(legacy_seconds / columnar_seconds, 3),
        "exact_matches": sum(len(r) for r in legacy_results),
    }


def test_workload_bit_identical(sweep):
    """Both arms return exactly the same R(Q, G) for every query."""
    cells = _workload_cells(sweep)
    assert _run_columnar(cells) == _run_legacy(cells)


def test_dense_bit_identical():
    cells = _dense_cells()
    assert _run_columnar(cells) == _run_legacy(cells)


def test_columnar_join_cell(benchmark):
    """Timed cell: the columnar join+expansion+filter segment (dense)."""
    cells = _dense_cells()
    results = benchmark(lambda: _run_columnar(cells))
    assert results and results[0]


def test_report_columnar_vs_legacy(sweep):
    """A/B report + ``BENCH_columnar.json``; the CI perf-smoke gate."""
    measured = {
        "workload": _ab(_workload_cells(sweep)),
        "dense": _ab(_dense_cells()),
    }
    rows = [
        [
            name,
            cell["queries"],
            ms(cell["legacy_seconds"]),
            ms(cell["columnar_seconds"]),
            f"{cell['speedup']:.2f}x",
            cell["exact_matches"],
        ]
        for name, cell in measured.items()
    ]
    print_report(
        format_table(
            ["cell", "queries", "legacy ms", "columnar ms", "speedup", "exact"],
            rows,
            title=(
                "columnar join+expansion+filter A/B — "
                f"workload: {DATASET}/{METHOD} k={K} |E(Q)|={EDGES}; "
                f"dense: n={DENSE['n']} k={DENSE['k']} seed={DENSE['seed']}; "
                f"best of {REPEATS}"
            ),
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "segment": "join+expansion+filter",
                "repeats": REPEATS,
                "bit_identical": True,
                "speedup": measured["dense"]["speedup"],
                "cells": {
                    "workload": {
                        "dataset": DATASET,
                        "method": METHOD,
                        "k": K,
                        "edge_count": EDGES,
                        **measured["workload"],
                    },
                    "dense": {**DENSE, **measured["dense"]},
                },
            },
            indent=2,
        )
        + "\n"
    )

    # CI perf-smoke gates: never a regression on the selective
    # workload, and >= 2x in the dense-candidate regime the
    # representation change targets.
    assert measured["workload"]["speedup"] >= 1.0, (
        f"columnar slower than legacy on the workload cell: {measured}"
    )
    assert measured["dense"]["speedup"] >= 2.0, (
        f"expected >= 2x on the dense cell, got {measured}"
    )
