"""Unit tests for the outsourced graph Go (Definition 5)."""

import pytest

from repro.kauto import build_k_automorphic_graph
from repro.outsource import (
    build_outsourced_graph,
    compression_ratio,
    recover_gk,
)


@pytest.fixture(params=[2, 3, 4])
def transform(figure1_graph, request):
    return build_k_automorphic_graph(figure1_graph, request.param, seed=1)


class TestGoConstruction:
    def test_go_contains_block_and_neighbors(self, transform):
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        block = set(transform.avt.first_block())
        assert block <= outsourced.graph.vertex_id_set()
        for vid in block:
            assert transform.gk.neighbors(vid) <= outsourced.graph.vertex_id_set()

    def test_go_edges_are_incident_to_block(self, transform):
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        block = outsourced.block_set
        for u, v in outsourced.graph.edges():
            assert u in block or v in block

    def test_n1_to_n1_edges_excluded(self, transform):
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        block = outsourced.block_set
        neighbor_edges_in_gk = [
            (u, v)
            for u, v in transform.gk.edges()
            if u not in block and v not in block
        ]
        for u, v in neighbor_edges_in_gk:
            assert not outsourced.graph.has_edge(u, v)

    def test_go_smaller_than_gk(self, transform):
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        if transform.k >= 2:
            assert outsourced.edge_count < transform.gk.edge_count

    def test_labels_preserved(self, transform):
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        for data in outsourced.graph.vertices():
            original = transform.gk.vertex(data.vertex_id)
            assert data.labels == original.labels
            assert data.vertex_type == original.vertex_type


class TestRecovery:
    def test_gk_exactly_recoverable(self, transform):
        """The paper's key claim: Gk = recover(Go, AVT)."""
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        recovered = recover_gk(outsourced, transform.avt)
        assert recovered.structure_equal(transform.gk)


class TestCompression:
    def test_ratio_shrinks_with_k(self, figure1_graph, small_graph):
        ratios = []
        for k in (2, 3, 4, 5):
            result = build_k_automorphic_graph(small_graph, k, seed=2)
            outsourced = build_outsourced_graph(result.gk, result.avt)
            ratios.append(compression_ratio(outsourced, result.gk))
        # |E(Go)|/|E(Gk)| should fall as k grows (Figure 12's shape)
        assert ratios[-1] < ratios[0]
        assert all(0 < r <= 1 for r in ratios)
