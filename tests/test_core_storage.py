"""Unit tests for deployment persistence."""

import json

import pytest

from repro.cloud import CloudServer
from repro.core import DataOwner, QueryClient, SystemConfig
from repro.core.storage import load_client_side, load_cloud_side, save_published
from repro.exceptions import ProtocolError
from repro.graph import example_query, example_social_network
from repro.matching import find_subgraph_matches, match_key


@pytest.fixture
def deployment(tmp_path):
    graph, schema = example_social_network()
    owner = DataOwner(graph, schema)
    published = owner.publish(SystemConfig(k=2))
    save_published(published, tmp_path / "dep")
    return graph, published, tmp_path / "dep"


class TestRoundTrip:
    def test_cloud_side_round_trip(self, deployment):
        _, published, root = deployment
        graph, avt, centers, expand = load_cloud_side(root)
        assert graph.structure_equal(published.upload_graph)
        assert list(avt.rows()) == list(published.transform.avt.rows())
        assert centers == published.center_vertices
        assert expand is True

    def test_client_side_round_trip(self, deployment):
        _, published, root = deployment
        lct, avt = load_client_side(root)
        assert lct.theta == published.lct.theta
        assert lct.group_ids() == published.lct.group_ids()
        assert avt.k == published.transform.avt.k

    def test_query_through_reloaded_deployment(self, deployment):
        original_graph, _, root = deployment
        cloud_graph, cloud_avt, centers, expand = load_cloud_side(root)
        lct, client_avt = load_client_side(root)

        cloud = CloudServer(cloud_graph, cloud_avt, centers, expand_in_cloud=expand)
        client = QueryClient(original_graph, lct, client_avt)
        query = example_query()
        answer = cloud.answer(client.prepare_query(query))
        outcome = client.process_answer(query, answer.matches, answer.expanded)
        oracle = {match_key(m) for m in find_subgraph_matches(query, original_graph)}
        assert {match_key(m) for m in outcome.matches} == oracle


class TestSecuritySplit:
    def test_cloud_directory_has_no_lct(self, deployment):
        _, _, root = deployment
        cloud_files = {p.name for p in (root / "cloud").iterdir()}
        assert "lct.json" not in cloud_files

    def test_cloud_files_contain_no_raw_labels(self, deployment):
        original_graph, _, root = deployment
        raw_labels = {
            label
            for data in original_graph.vertices()
            for _, label in data.label_items()
        }
        for path in (root / "cloud").iterdir():
            content = path.read_text()
            for label in raw_labels:
                assert label not in content


class TestErrors:
    def test_missing_cloud_artifacts(self, tmp_path):
        with pytest.raises(ProtocolError):
            load_cloud_side(tmp_path)

    def test_corrupt_client_artifacts(self, deployment, tmp_path):
        _, _, root = deployment
        (root / "client" / "lct.json").write_text("not json{")
        with pytest.raises(ProtocolError):
            load_client_side(root)

    def test_corrupt_meta(self, deployment):
        _, _, root = deployment
        (root / "cloud" / "meta.json").write_text(json.dumps({"nope": 1}))
        with pytest.raises(ProtocolError):
            load_cloud_side(root)
