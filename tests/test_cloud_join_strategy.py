"""Tests for the join-strategy ablation ("rin" vs "full" expansion)."""

import pytest

from repro.cloud import CloudServer
from repro.matching import find_subgraph_matches, match_key


@pytest.fixture
def servers(figure1_pipeline):
    pipe = figure1_pipeline
    rin_server = CloudServer(
        pipe.outsourced.graph,
        pipe.transform.avt,
        pipe.outsourced.block_vertices,
        join_strategy="rin",
    )
    full_server = CloudServer(
        pipe.outsourced.graph,
        pipe.transform.avt,
        pipe.outsourced.block_vertices,
        join_strategy="full",
    )
    return pipe, rin_server, full_server


class TestFullJoinStrategy:
    def test_full_returns_expanded_candidates(self, servers):
        pipe, rin_server, full_server = servers
        rin_answer = rin_server.answer(pipe.qo)
        full_answer = full_server.answer(pipe.qo)
        assert not rin_answer.expanded
        assert full_answer.expanded

        direct = {
            match_key(m) for m in find_subgraph_matches(pipe.qo, pipe.transform.gk)
        }
        assert {match_key(m) for m in full_answer.matches} == direct
        # Rin expanded through the AVT gives the same set
        expanded_rin = {
            match_key(m)
            for m in pipe.transform.avt.expand_matches(rin_answer.matches)
        }
        assert expanded_rin == direct

    def test_full_join_produces_k_times_more_tuples(self, servers):
        pipe, rin_server, full_server = servers
        rin_answer = rin_server.answer(pipe.qo)
        full_answer = full_server.answer(pipe.qo)
        # the whole point of Rin: the cloud materializes a 1/k slice
        assert len(full_answer.matches) == pipe.transform.k * len(rin_answer.matches)

    def test_invalid_strategy_rejected(self, figure1_pipeline):
        pipe = figure1_pipeline
        with pytest.raises(ValueError):
            CloudServer(
                pipe.outsourced.graph,
                pipe.transform.avt,
                pipe.outsourced.block_vertices,
                join_strategy="bogus",
            )
