"""The typed-core gate, approximated locally.

CI runs mypy over ``repro.core``, ``repro.cloud``, ``repro.obs`` and
``repro.matching`` (the columnar hot path lives there)
with ``disallow_untyped_defs`` (see ``[tool.mypy]`` in pyproject.toml
and the ``typecheck`` workflow job).  The development container does
not ship mypy, so this test enforces the *completeness* half of that
contract — every function in the typed core carries a full signature
(parameter annotations + return annotation) — via the AST.  mypy in CI
then checks the annotations are also *consistent*.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: The typed core: the packages pyproject's ``[tool.mypy]`` overrides
#: hold to ``disallow_untyped_defs`` / ``disallow_incomplete_defs``.
TYPED_PACKAGES = (
    "repro/core",
    "repro/cloud",
    "repro/obs",
    "repro/matching",
    "repro/gateway",
)


def _typed_core_files() -> list[Path]:
    files: list[Path] = []
    for package in TYPED_PACKAGES:
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files, "typed-core packages not found under src/"
    return files


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """The unannotated pieces of one signature (empty = fully typed)."""
    missing: list[str] = []
    args = node.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional + args.kwonlyargs):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


def test_typed_core_signatures_are_complete():
    """Every def in repro.core / repro.cloud / repro.obs is annotated."""
    offenders: list[str] = []
    for path in _typed_core_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(node)
            if missing:
                rel = path.relative_to(REPO)
                offenders.append(
                    f"{rel}:{node.lineno} {node.name}: missing {', '.join(missing)}"
                )
    assert not offenders, (
        "untyped signatures in the typed core (CI's mypy gate would "
        "reject these):\n" + "\n".join(offenders)
    )


def test_mypy_config_targets_the_typed_core():
    """pyproject pins mypy to the same packages this test scans."""
    if sys.version_info < (3, 11):
        pytest.skip("tomllib requires Python 3.11+")
    import tomllib

    config = tomllib.loads((REPO / "pyproject.toml").read_text(encoding="utf-8"))
    mypy = config["tool"]["mypy"]
    assert set(mypy["packages"]) == {
        package.replace("/", ".") for package in TYPED_PACKAGES
    }
    assert mypy["disallow_untyped_defs"] is True
    strict_override = next(
        o
        for o in config["tool"]["mypy"]["overrides"]
        if o.get("disallow_untyped_defs") is True
    )
    assert set(strict_override["module"]) == {
        package.replace("/", ".") + ".*" for package in TYPED_PACKAGES
    }


def test_typed_core_annotations_evaluate():
    """``typing.get_type_hints`` resolves on representative public APIs.

    Guards against annotations that parse but reference names missing
    at runtime (broken forward references, conditional imports).
    """
    import typing

    from repro.cloud.server import CloudAnswer, CloudServer
    from repro.core.protocol import NetworkChannel
    from repro.obs import Observability
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import Tracer

    for api in (
        CloudServer.__init__,
        CloudServer.answer,
        CloudServer.apply_delta,
        CloudAnswer.__init__,
        NetworkChannel.transmit,
        Observability.__init__,
        MetricsRegistry.register_callback,
        Tracer.span,
    ):
        hints = typing.get_type_hints(api)
        assert "return" in hints, f"{api.__qualname__} lacks a return annotation"
