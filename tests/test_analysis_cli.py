"""``repro lint``: exit codes, JSON output, rule selection, artifacts."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import rule_ids
from repro.cli import main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    try:
        code = main(list(argv))
    except SystemExit as exc:  # argparse-level errors
        code = int(exc.code or 0)
    out, err = capsys.readouterr()
    return code, out, err


def test_lint_src_is_clean_and_exits_zero(capsys):
    code, out, _ = run_cli(capsys, "lint", "src")
    assert code == 0
    assert "clean" in out


def test_lint_violating_file_exits_nonzero(capsys):
    code, out, _ = run_cli(capsys, "lint", str(FIXTURES / "r1_violation.py"))
    assert code == 1
    assert "[R1]" in out


def test_lint_json_output_is_machine_readable(capsys):
    code, out, _ = run_cli(
        capsys, "lint", "--json", str(FIXTURES / "r4_violation.py")
    )
    assert code == 1
    doc = json.loads(out)
    assert doc["ok"] is False
    assert doc["files_checked"] == 1
    assert doc["counts"].get("R4", 0) > 0
    for finding in doc["findings"]:
        assert {"path", "line", "col", "rule", "message", "severity", "hint"} <= set(
            finding
        )


def test_lint_rule_filter_restricts_findings(capsys):
    # the R1 fixture is clean under every *other* rule
    code, out, _ = run_cli(
        capsys, "lint", "--rule", "R3,R4", str(FIXTURES / "r1_violation.py")
    )
    assert code == 0
    # ... and dirty when R1 itself is selected
    code, out, _ = run_cli(
        capsys, "lint", "--rule", "R1", str(FIXTURES / "r1_violation.py")
    )
    assert code == 1


def test_lint_unknown_rule_exits_two(capsys):
    code, _, err = run_cli(capsys, "lint", "--rule", "R99", "src")
    assert code == 2
    assert "unknown rule" in err


def test_lint_out_writes_json_artifact(tmp_path, capsys):
    artifact = tmp_path / "artifacts" / "lint.json"
    code, _, _ = run_cli(capsys, "lint", "src", "--out", str(artifact))
    assert code == 0
    doc = json.loads(artifact.read_text(encoding="utf-8"))
    assert doc["ok"] is True
    assert doc["rules"] == rule_ids()


def test_lint_list_rules_names_the_catalog(capsys):
    code, out, _ = run_cli(capsys, "lint", "--list-rules")
    assert code == 0
    for rule_id in rule_ids():
        assert rule_id in out
    assert "trust-boundary" in out
    assert "privacy-taint" in out
    assert "async-safety" in out
    assert "protocol-invariants" in out
    # every catalog line carries the rule's default severity
    assert "[error]" in out


def test_lint_fail_on_lowers_the_gate(capsys):
    path = str(FIXTURES / "r7_warning_only.py")
    # the only finding is a WARNING: passes the default error gate...
    code, out, _ = run_cli(capsys, "lint", path)
    assert code == 0
    assert "[R7]" in out
    # ... and fails once the gate is lowered
    code, _, _ = run_cli(capsys, "lint", "--fail-on", "warning", path)
    assert code == 1


def test_lint_update_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "accepted.json"
    target = str(FIXTURES / "r1_violation.py")
    code, out, _ = run_cli(
        capsys,
        "lint",
        target,
        "--baseline",
        str(baseline),
        "--update-baseline",
    )
    assert code == 0
    assert "recorded" in out
    doc = json.loads(baseline.read_text(encoding="utf-8"))
    assert doc["version"] == 1 and doc["entries"]
    # baselined findings no longer gate ...
    code, out, _ = run_cli(
        capsys, "lint", target, "--baseline", str(baseline)
    )
    assert code == 0
    assert "baselined finding(s) suppressed" in out
    # ... but --no-baseline restores the raw verdict
    code, _, _ = run_cli(
        capsys,
        "lint",
        target,
        "--baseline",
        str(baseline),
        "--no-baseline",
    )
    assert code == 1


def test_lint_unreadable_baseline_exits_two(tmp_path, capsys):
    baseline = tmp_path / "bad.json"
    baseline.write_text("[]", encoding="utf-8")
    code, _, err = run_cli(
        capsys, "lint", "src", "--baseline", str(baseline)
    )
    assert code == 2
    assert "baseline" in err


def test_lint_shipped_baseline_is_empty():
    doc = json.loads(
        (REPO / ".lint-baseline.json").read_text(encoding="utf-8")
    )
    assert doc == {"entries": [], "version": 1}, (
        "the shipped baseline must stay empty: fix findings, do not "
        "grandfather them"
    )


def test_lint_sarif_artifact(tmp_path, capsys):
    sarif_path = tmp_path / "report" / "lint.sarif"
    code, _, _ = run_cli(
        capsys,
        "lint",
        str(FIXTURES / "r8_violation.py"),
        "--sarif",
        str(sarif_path),
    )
    assert code == 1
    doc = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == set(
        rule_ids()
    )
    levels = {result["level"] for result in run["results"]}
    assert "error" in levels and "note" in levels  # INFO maps to note
    first = run["results"][0]["locations"][0]["physicalLocation"]
    assert first["region"]["startLine"] >= 1
    assert first["region"]["startColumn"] >= 1
