"""Unit tests for the tracing substrate (`repro.obs.tracing`).

Covers the three tracer grades (recording, measure-only, null), span
nesting across threads, explicit cross-thread parenting, fork resets,
retention caps and the cProfile hook.
"""

import threading
import time

from repro.obs import NULL_SPAN, NULL_TRACER, Observability, Span, Trace, Tracer
from repro.obs.profiling import SpanProfiler


class TestSpan:
    def test_set_is_chainable(self):
        span = Span("phase")
        assert span.set(a=1, b="x") is span
        assert span.attributes == {"a": 1, "b": "x"}

    def test_dict_round_trip(self):
        span = Span("phase", span_id=3, parent_id=1, depth=2, duration=0.5)
        span.set(bytes=17)
        assert Span.from_dict(span.to_dict()) == span


class TestRecordingTracer:
    def test_nesting_assigns_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1
        assert outer.parent_id is None

    def test_completion_order_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [span.name for span in tracer.trace()]
        assert names == ["inner", "outer"]

    def test_sibling_order_restored_by_started_at(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        trace = tracer.trace()
        kids = trace.children(trace.first("root"))
        assert [s.name for s in kids] == ["first", "second"]
        assert all(k.parent_id == root.span_id for k in kids)

    def test_durations_are_positive_and_nested_fits_in_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        trace = tracer.trace()
        inner = trace.first("inner")
        outer = trace.first("outer")
        assert inner.duration > 0.0
        assert outer.duration >= inner.duration

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("phase", stars=3) as span:
            span.set(rs_size=10)
        recorded = tracer.trace().first("phase")
        assert recorded.attributes == {"stars": 3, "rs_size": 10}

    def test_explicit_parent_overrides_stack(self):
        """Worker-thread spans attach to the span passed as parent=."""
        tracer = Tracer()
        with tracer.span("matching") as matching:
            results = []

            def work():
                with tracer.span("star", parent=matching) as s:
                    results.append(s)

            threads = [threading.Thread(target=work) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        trace = tracer.trace()
        stars = trace.named("star")
        assert len(stars) == 3
        assert all(s.parent_id == matching.span_id for s in stars)
        assert all(s.depth == matching.depth + 1 for s in stars)

    def test_threads_nest_independently(self):
        """Each thread gets its own stack: no cross-thread implicit parents."""
        tracer = Tracer()

        def work(idx):
            with tracer.span(f"root-{idx}"):
                with tracer.span(f"child-{idx}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace = tracer.trace()
        for i in range(4):
            root = trace.first(f"root-{i}")
            child = trace.first(f"child-{i}")
            assert root.parent_id is None
            assert child.parent_id == root.span_id

    def test_take_trace_clears_buffer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        first = tracer.take_trace()
        assert len(first) == 1
        assert len(tracer.trace()) == 0

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.trace()]
        assert names == ["s2", "s3", "s4"]

    def test_fork_reset_clears_buffer_and_repins_pid(self):
        tracer = Tracer()
        with tracer.span("parent-span"):
            pass
        tracer._pid = -1  # simulate "we are a forked child now"
        with tracer.span("child-span"):
            pass
        names = [s.name for s in tracer.trace()]
        assert names == ["child-span"]


class TestMeasureOnlyTracer:
    def test_durations_without_retention(self):
        tracer = Tracer(record=False)
        with tracer.span("phase") as span:
            time.sleep(0.001)
        assert span.duration > 0.0
        assert span.span_id == 0  # no ids allocated
        assert len(tracer.trace()) == 0
        assert tracer.recording is False

    def test_parent_kwarg_is_inert(self):
        tracer = Tracer(record=False)
        fake_parent = Span("outer")  # span_id == 0
        with tracer.span("inner", parent=fake_parent) as span:
            pass
        assert span.parent_id is None


class TestNullTracer:
    def test_shared_null_span(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span.set(a=1) is span
        assert NULL_SPAN.attributes == {}
        assert len(NULL_TRACER.trace()) == 0
        assert NULL_TRACER.recording is False
        assert NULL_TRACER.enabled is False


class TestTraceHelpers:
    def _trace(self):
        tracer = Tracer()
        with tracer.span("root", k=2):
            with tracer.span("leaf", bytes=10):
                pass
            with tracer.span("leaf", bytes=5):
                pass
        return tracer.trace()

    def test_named_first_attr_sum(self):
        trace = self._trace()
        assert len(trace.named("leaf")) == 2
        assert trace.first("root").attributes["k"] == 2
        assert trace.attr("leaf", "bytes") == 10  # first leaf
        assert trace.sum_attr("leaf", "bytes") == 15
        assert trace.attr("missing", "bytes", 7) == 7

    def test_total_seconds_counts_roots_only(self):
        trace = self._trace()
        assert trace.total_seconds == trace.first("root").duration

    def test_extend_and_dict_round_trip(self):
        trace = self._trace()
        other = self._trace()
        merged = Trace().extend(trace).extend(other)
        assert len(merged) == len(trace) + len(other)
        restored = Trace.from_dict(merged.to_dict())
        assert restored == merged


class TestProfilerHook:
    def test_profile_attribute_attached(self):
        obs = Observability(profile=True)
        tracer = obs.tracer
        with tracer.span("query"):
            sum(range(2000))
        span = tracer.trace().first("query")
        profile = span.attributes.get("profile")
        assert isinstance(profile, list) and profile

    def test_named_profile_targets_only_those_spans(self):
        profiler = SpanProfiler(["cloud.join"])
        tracer = Tracer(profiler=profiler)
        with tracer.span("query"):
            with tracer.span("cloud.join"):
                sum(range(2000))
        trace = tracer.trace()
        assert "profile" in trace.first("cloud.join").attributes
        assert "profile" not in trace.first("query").attributes

    def test_for_query_scope_inherits_profiler(self):
        obs = Observability(profile=True)
        scope = obs.for_query()
        with scope.tracer.span("query"):
            sum(range(2000))
        span = scope.tracer.trace().first("query")
        assert "profile" in span.attributes


class TestTraceStitching:
    """Trace.merge / Tracer.absorb: cross-id-space grafting.

    Every tracer counts span ids from 1, so fork children and remote
    processes produce ids that collide with the local tracer's.  The
    stitching primitives must remap every foreign id to a fresh local
    one, rewrite internal parent links through the mapping, and re-root
    foreign roots under the local parent span.
    """

    def _foreign_trace(self, label):
        tracer = Tracer(query_id="q-remote")
        with tracer.span(f"{label}.root") as root:
            root.set(ctx_parent=99)
            with tracer.span(f"{label}.child"):
                pass
        return tracer.take_trace()

    def test_merge_remaps_colliding_ids(self):
        local = Tracer()
        with local.span("local.root"):
            pass
        trace = local.take_trace()
        foreign = self._foreign_trace("remote")
        # both tracers allocated ids starting at 1: guaranteed overlap
        assert {s.span_id for s in trace} & {s.span_id for s in foreign}
        merged = trace.merge(
            foreign, parent_id=trace.first("local.root").span_id
        )
        ids = [span.span_id for span in merged]
        assert len(ids) == len(set(ids)) == 3

    def test_merge_preserves_parent_links_and_depths(self):
        local = Tracer()
        with local.span("local.root"):
            pass
        trace = local.take_trace()
        root_id = trace.first("local.root").span_id
        trace.merge(self._foreign_trace("remote"), parent_id=root_id)
        remote_root = trace.first("remote.root")
        remote_child = trace.first("remote.child")
        assert remote_root.parent_id == root_id
        assert remote_child.parent_id == remote_root.span_id
        assert remote_root.depth == trace.first("local.root").depth + 1
        assert remote_child.depth == remote_root.depth + 1

    def test_merge_does_not_mutate_the_input(self):
        foreign = self._foreign_trace("remote")
        before = [(s.span_id, s.parent_id) for s in foreign]
        Trace().merge(foreign, parent_id=None)
        assert [(s.span_id, s.parent_id) for s in foreign] == before

    def test_fork_children_with_colliding_ids_absorb_uniquely(self):
        """Regression: two fork children both count span ids from 1;
        absorbing both into the coordinator must never produce
        duplicate ids or cross-wired parent links."""
        coordinator = Tracer()
        with coordinator.span("cloud.scatter") as parent:
            for shard in range(2):
                child = Tracer(query_id="q-1")
                with child.span("shard.match") as span:
                    span.set(shard=shard)
                    with child.span("shard.inner"):
                        pass
                # round-trip through the wire encoding, as the real
                # fork pool does
                coordinator.absorb(
                    Trace.from_dict(child.take_trace().to_dict()),
                    parent=parent,
                )
        trace = coordinator.trace()
        ids = [span.span_id for span in trace]
        assert len(ids) == len(set(ids))
        roots = trace.named("shard.match")
        inners = trace.named("shard.inner")
        assert len(roots) == 2 and len(inners) == 2
        assert all(s.parent_id == parent.span_id for s in roots)
        assert all(s.depth == parent.depth + 1 for s in roots)
        # each inner chains to its own shard's root — not the other's
        assert {s.parent_id for s in inners} == {s.span_id for s in roots}

    def test_absorbed_ids_never_collide_with_later_local_spans(self):
        local = Tracer()
        with local.span("local.root") as root:
            local.absorb(self._foreign_trace("remote"), parent=root)
            with local.span("local.later"):
                pass
        ids = [span.span_id for span in local.trace()]
        assert len(ids) == len(set(ids))

    def test_absorb_is_noop_on_measure_only_tracer(self):
        tracer = Tracer(record=False)
        assert tracer.absorb(self._foreign_trace("remote")) == []
        assert len(tracer.trace()) == 0

    def test_snapshot_of_open_span_has_live_duration(self):
        tracer = Tracer()
        with tracer.span("gateway.request") as root:
            time.sleep(0.002)
            snap = tracer.snapshot(root)
            assert snap.duration > 0.0
            assert snap.span_id == root.span_id
            assert root.duration == 0.0  # the original is still open


class TestObservabilityFacade:
    def test_for_query_shares_registry_not_tracer(self):
        obs = Observability()
        scope = obs.for_query()
        assert scope.metrics is obs.metrics
        assert scope.tracer is not obs.tracer
        assert scope.recording

    def test_disabled_is_shared_noop(self):
        disabled = Observability.disabled()
        assert disabled is Observability.disabled()
        assert disabled.for_query() is disabled
        assert not disabled.enabled
        assert disabled.tracer.span("x") is NULL_SPAN
        # null registry hands out null metrics that accept everything
        disabled.metrics.counter("c").inc(5)
        assert disabled.metrics.counter("c").total == 0.0

    def test_measuring_times_without_retaining(self):
        obs = Observability.measuring()
        with obs.tracer.span("phase") as span:
            pass
        assert span.duration >= 0.0
        assert len(obs.tracer.trace()) == 0
