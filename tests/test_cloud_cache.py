"""Tests for star-match caching in the cloud server."""

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.cloud.cache import (
    StarMatchCache,
    leaf_role_order,
    matches_to_roles,
    roles_to_matches,
    star_signature,
)
from repro.graph import AttributedGraph, example_social_network
from repro.matching import Star, find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset


class TestSignature:
    def query_with_two_equivalent_stars(self):
        query = AttributedGraph()
        # star at 0 and star at 3 have identical shapes
        for vid, vertex_type in ((0, "a"), (1, "b"), (2, "b"), (3, "a"), (4, "b"), (5, "b")):
            query.add_vertex(vid, vertex_type)
        query.add_edge(0, 1)
        query.add_edge(0, 2)
        query.add_edge(3, 4)
        query.add_edge(3, 5)
        return query

    def test_equivalent_stars_share_signature(self):
        query = self.query_with_two_equivalent_stars()
        sig_a = star_signature(query, Star(center=0, leaves=(1, 2)))
        sig_b = star_signature(query, Star(center=3, leaves=(4, 5)))
        assert sig_a == sig_b

    def test_different_constraints_differ(self):
        query = self.query_with_two_equivalent_stars()
        query.set_vertex_labels(4, {"x": ["v"]})
        sig_a = star_signature(query, Star(center=0, leaves=(1, 2)))
        sig_b = star_signature(query, Star(center=3, leaves=(4, 5)))
        assert sig_a != sig_b

    def test_role_round_trip(self):
        query = self.query_with_two_equivalent_stars()
        star = Star(center=0, leaves=(1, 2))
        order = leaf_role_order(query, star)
        matches = [{0: 10, 1: 11, 2: 12}, {0: 20, 1: 21, 2: 22}]
        roles = matches_to_roles(matches, star, order)
        assert roles_to_matches(roles, star, order) == matches


class TestLru:
    def test_hit_and_miss_counting(self):
        cache = StarMatchCache(capacity=2)
        assert cache.get(("a",)) is None
        cache.put(("a",), [(1,)])
        assert cache.get(("a",)) == [(1,)]
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_order(self):
        cache = StarMatchCache(capacity=2)
        cache.put(("a",), [])
        cache.put(("b",), [])
        cache.get(("a",))  # a is now most recent
        cache.put(("c",), [])  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert len(cache) == 2

    def test_zero_capacity_stores_nothing(self):
        cache = StarMatchCache(capacity=0)
        cache.put(("a",), [(1,)])
        assert len(cache) == 0

    def test_clear(self):
        cache = StarMatchCache(capacity=2)
        cache.put(("a",), [])
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hit_rate == 0.0


class TestCachedServerCorrectness:
    @pytest.mark.parametrize("method", ["EFF", "BAS"])
    def test_results_identical_with_and_without_cache(self, method):
        dataset = load_dataset("DBpedia", scale=0.1)
        workload = generate_workload(dataset.graph, 4, 6, seed=3)
        plain = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(k=2, method=MethodConfig.from_name(method)),
            sample_workload=workload,
        )
        cached = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(
                k=2, method=MethodConfig.from_name(method), star_cache_size=64
            ),
            sample_workload=workload,
        )
        for query in workload + workload:  # repeat to force hits
            a = {match_key(m) for m in plain.query(query).matches}
            b = {match_key(m) for m in cached.query(query).matches}
            assert a == b

    def test_cache_gets_hits_on_repeated_workload(self):
        graph, schema = example_social_network()
        from repro.graph import example_query

        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_cache_size=32)
        )
        query = example_query()
        system.query(query)
        # equivalent stars inside one query may already hit
        hits_after_first = system.cloud.star_cache.hits
        system.query(query)
        assert system.cloud.star_cache.hits > hits_after_first
        oracle = find_subgraph_matches(query, graph)
        assert len(system.query(query).matches) == len(oracle)
