"""Tests for star-match caching in the cloud server."""

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.cloud.cache import (
    StarMatchCache,
    leaf_role_order,
    matches_to_roles,
    roles_to_matches,
    star_signature,
)
from repro.graph import AttributedGraph, example_social_network
from repro.matching import Star, find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset


class TestSignature:
    def query_with_two_equivalent_stars(self):
        query = AttributedGraph()
        # star at 0 and star at 3 have identical shapes
        for vid, vertex_type in ((0, "a"), (1, "b"), (2, "b"), (3, "a"), (4, "b"), (5, "b")):
            query.add_vertex(vid, vertex_type)
        query.add_edge(0, 1)
        query.add_edge(0, 2)
        query.add_edge(3, 4)
        query.add_edge(3, 5)
        return query

    def test_equivalent_stars_share_signature(self):
        query = self.query_with_two_equivalent_stars()
        sig_a = star_signature(query, Star(center=0, leaves=(1, 2)))
        sig_b = star_signature(query, Star(center=3, leaves=(4, 5)))
        assert sig_a == sig_b

    def test_different_constraints_differ(self):
        query = self.query_with_two_equivalent_stars()
        query.set_vertex_labels(4, {"x": ["v"]})
        sig_a = star_signature(query, Star(center=0, leaves=(1, 2)))
        sig_b = star_signature(query, Star(center=3, leaves=(4, 5)))
        assert sig_a != sig_b

    def test_role_round_trip(self):
        query = self.query_with_two_equivalent_stars()
        star = Star(center=0, leaves=(1, 2))
        order = leaf_role_order(query, star)
        matches = [{0: 10, 1: 11, 2: 12}, {0: 20, 1: 21, 2: 22}]
        roles = matches_to_roles(matches, star, order)
        assert roles_to_matches(roles, star, order) == matches


class TestLru:
    def test_hit_and_miss_counting(self):
        cache = StarMatchCache(capacity=2)
        assert cache.get(("a",)) is None
        cache.put(("a",), [(1,)])
        assert cache.get(("a",)) == [(1,)]
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_order(self):
        cache = StarMatchCache(capacity=2)
        cache.put(("a",), [])
        cache.put(("b",), [])
        cache.get(("a",))  # a is now most recent
        cache.put(("c",), [])  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert len(cache) == 2

    def test_zero_capacity_stores_nothing(self):
        cache = StarMatchCache(capacity=0)
        cache.put(("a",), [(1,)])
        assert len(cache) == 0

    def test_clear(self):
        cache = StarMatchCache(capacity=2)
        cache.put(("a",), [])
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hit_rate == 0.0


class TestAliasing:
    """Regression: get/put used to hand out the live internal list."""

    def test_mutating_a_hit_does_not_corrupt_later_hits(self):
        cache = StarMatchCache(capacity=4)
        cache.put(("sig",), [(1, 2), (3, 4)])
        first = cache.get(("sig",))
        assert first == [(1, 2), (3, 4)]
        # a buggy caller (or another query's thread) scribbles on it
        first.append((99, 99))
        first[0] = (0, 0)
        second = cache.get(("sig",))
        assert second == [(1, 2), (3, 4)]

    def test_mutating_the_put_list_does_not_corrupt_the_entry(self):
        cache = StarMatchCache(capacity=4)
        roles = [(1, 2)]
        cache.put(("sig",), roles)
        roles.append((7, 8))  # caller keeps (and mutates) its list
        assert cache.get(("sig",)) == [(1, 2)]

    def test_hits_are_independent_copies(self):
        cache = StarMatchCache(capacity=4)
        cache.put(("sig",), [(1, 2)])
        a = cache.get(("sig",))
        b = cache.get(("sig",))
        assert a == b
        assert a is not b

    def test_server_results_survive_caller_mutation(self):
        """End to end: mutating one answer must not change a re-query."""
        graph, schema = example_social_network()
        from repro.graph import example_query

        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_cache_size=32)
        )
        query = example_query()
        first = system.query(query).matches
        baseline = sorted(match_key(m) for m in first)
        # a rogue caller mutates the returned matches in place
        for match in first:
            for key in list(match):
                match[key] = -1
        again = system.query(query).matches
        assert sorted(match_key(m) for m in again) == baseline


class TestThreadSafety:
    def test_concurrent_get_put_is_consistent(self):
        import threading

        cache = StarMatchCache(capacity=16)
        signatures = [(f"s{i}",) for i in range(8)]
        errors: list[AssertionError] = []
        barrier = threading.Barrier(4)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for round_ in range(200):
                    signature = signatures[(seed + round_) % len(signatures)]
                    expected = [(signature[0], 1), (signature[0], 2)]
                    hit = cache.get(signature)
                    if hit is not None:
                        assert hit == expected, f"corrupted entry for {signature}"
                        hit.append(("junk", 0))  # must never leak back
                    else:
                        cache.put(signature, expected)
            except AssertionError as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        hits, misses = cache.counters()
        assert hits + misses == 4 * 200
        assert len(cache) <= 16


class TestCachedServerCorrectness:
    @pytest.mark.parametrize("method", ["EFF", "BAS"])
    def test_results_identical_with_and_without_cache(self, method):
        dataset = load_dataset("DBpedia", scale=0.1)
        workload = generate_workload(dataset.graph, 4, 6, seed=3)
        plain = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(k=2, method=MethodConfig.from_name(method)),
            sample_workload=workload,
        )
        cached = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(
                k=2, method=MethodConfig.from_name(method), star_cache_size=64
            ),
            sample_workload=workload,
        )
        for query in workload + workload:  # repeat to force hits
            a = {match_key(m) for m in plain.query(query).matches}
            b = {match_key(m) for m in cached.query(query).matches}
            assert a == b

    def test_cache_gets_hits_on_repeated_workload(self):
        graph, schema = example_social_network()
        from repro.graph import example_query

        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_cache_size=32)
        )
        query = example_query()
        system.query(query)
        # equivalent stars inside one query may already hit
        hits_after_first = system.cloud.star_cache.hits
        system.query(query)
        assert system.cloud.star_cache.hits > hits_after_first
        oracle = find_subgraph_matches(query, graph)
        assert len(system.query(query).matches) == len(oracle)
