"""Executable versions of the paper's theorems (Appendix A).

Each test class mirrors one theorem statement; they run over the
running example and randomized pipelines.
"""

import pytest

from repro.anonymize import anonymize_query, build_lct, cost_based_grouping
from repro.graph import compute_statistics, make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.matching import find_subgraph_matches, match_key
from repro.workloads import random_walk_query


@pytest.fixture(scope="module", params=[0, 1, 2])
def pipeline(request):
    seed = request.param
    schema = make_schema(2, 1, 6)
    graph = random_attributed_graph(schema, 50, edges_per_vertex=2, seed=seed)
    query = random_walk_query(graph, 3, seed=seed + 10)
    lct = build_lct(
        schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph), seed=seed
    )
    transform = build_k_automorphic_graph(lct.apply_to_graph(graph), 3, seed=seed)
    return graph, query, lct, transform


class TestTheorem1:
    """R(Q, G) ⊆ R(Qo, Gk): anonymization never loses a true match."""

    def test_containment(self, pipeline):
        graph, query, lct, transform = pipeline
        true_matches = {match_key(m) for m in find_subgraph_matches(query, graph)}
        anonymized = anonymize_query(query, lct)
        candidate_matches = {
            match_key(m) for m in find_subgraph_matches(anonymized, transform.gk)
        }
        assert true_matches <= candidate_matches

    def test_containment_is_typically_strict(self, pipeline):
        """Noise edges/labels usually create false positives — the very
        reason the client-side filter exists."""
        graph, query, lct, transform = pipeline
        true_matches = {match_key(m) for m in find_subgraph_matches(query, graph)}
        anonymized = anonymize_query(query, lct)
        candidates = {
            match_key(m) for m in find_subgraph_matches(anonymized, transform.gk)
        }
        # not asserted strict per seed (a very selective query may have
        # no false positives), but candidates never shrink
        assert len(candidates) >= len(true_matches)


class TestTheorem2:
    """Optimal decomposition == minimum weighted vertex cover.

    With unit weights the optimal decomposition size equals the
    unweighted minimum-vertex-cover size (the reduction in the proof).
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_reduction_on_random_queries(self, seed):
        import itertools

        from repro.cloud import is_vertex_cover, minimum_weighted_vertex_cover

        schema = make_schema(1, 1, 4)
        graph = random_attributed_graph(schema, 30, edges_per_vertex=2, seed=seed)
        query = random_walk_query(graph, 5, seed=seed)
        edges = list(query.edges())
        weights = {v: 1.0 for v in query.vertex_ids()}
        cover = minimum_weighted_vertex_cover(edges, weights)

        vertices = sorted(query.vertex_ids())
        brute = min(
            len(combo)
            for r in range(len(vertices) + 1)
            for combo in itertools.combinations(vertices, r)
            if is_vertex_cover(edges, set(combo))
        )
        assert len(cover) == brute


class TestTheorem3:
    """Every match of Qo over Gk is F_j of a match anchored in B1."""

    def test_anchoring(self, pipeline):
        graph, query, lct, transform = pipeline
        anonymized = anonymize_query(query, lct)
        all_matches = find_subgraph_matches(anonymized, transform.gk)
        block = set(transform.avt.first_block())
        anchor = next(iter(anonymized.vertex_ids()))
        anchored_keys = {
            match_key(m) for m in all_matches if m[anchor] in block
        }
        derived = set()
        for match in all_matches:
            if match_key(match) in anchored_keys:
                for m in range(transform.k):
                    derived.add(match_key(transform.avt.apply_to_match(match, m)))
        assert derived == {match_key(m) for m in all_matches}

    def test_every_match_is_an_image(self, pipeline):
        graph, query, lct, transform = pipeline
        anonymized = anonymize_query(query, lct)
        block = set(transform.avt.first_block())
        anchor = next(iter(anonymized.vertex_ids()))
        for match in find_subgraph_matches(anonymized, transform.gk):
            vertex = match[anchor]
            shift, b1_vertex = transform.avt.to_block_anchor(vertex)
            pulled_back = transform.avt.apply_to_match(match, transform.k - shift)
            assert pulled_back[anchor] == b1_vertex
            assert pulled_back[anchor] in block
            # the pulled-back assignment is itself a match of Qo
            for u, v in anonymized.edges():
                assert transform.gk.has_edge(pulled_back[u], pulled_back[v])
