"""Unit tests for the multilevel partitioner (METIS substitute)."""

import pytest

from repro.exceptions import PartitionError
from repro.graph import grid_graph
from repro.kauto import cut_size, partition_graph, validate_partition


class TestPartitionBasics:
    def test_blocks_partition_the_graph(self, small_graph):
        for k in (2, 3, 5):
            blocks = partition_graph(small_graph, k, seed=1)
            validate_partition(small_graph, blocks, k)

    def test_k1_returns_everything(self, small_graph):
        blocks = partition_graph(small_graph, 1)
        assert blocks == [sorted(small_graph.vertex_ids())]

    def test_invalid_k(self, small_graph):
        with pytest.raises(PartitionError):
            partition_graph(small_graph, 0)

    def test_empty_graph(self):
        from repro.graph import AttributedGraph

        blocks = partition_graph(AttributedGraph(), 3)
        assert blocks == [[], [], []]

    def test_deterministic_for_seed(self, small_graph):
        a = partition_graph(small_graph, 3, seed=7)
        b = partition_graph(small_graph, 3, seed=7)
        assert a == b

    def test_tiny_graph_fewer_vertices_than_k(self):
        from repro.graph import AttributedGraph

        graph = AttributedGraph()
        graph.add_vertex(0, "t")
        graph.add_vertex(1, "t")
        graph.add_edge(0, 1)
        blocks = partition_graph(graph, 4, seed=0)
        validate_partition(graph, blocks, 4)


class TestPartitionQuality:
    def test_roughly_balanced(self, medium_graph):
        k = 4
        blocks = partition_graph(medium_graph, k, seed=2)
        sizes = [len(b) for b in blocks]
        target = medium_graph.vertex_count / k
        assert max(sizes) <= 1.5 * target
        assert min(sizes) >= 0.4 * target

    def test_beats_random_partition_on_cut(self, medium_graph):
        import random

        k = 3
        blocks = partition_graph(medium_graph, k, seed=4)
        smart_cut = cut_size(medium_graph, blocks)

        rng = random.Random(4)
        vertices = sorted(medium_graph.vertex_ids())
        rng.shuffle(vertices)
        chunk = (len(vertices) + k - 1) // k
        random_blocks = [vertices[i * chunk : (i + 1) * chunk] for i in range(k)]
        random_cut = cut_size(medium_graph, random_blocks)
        assert smart_cut < random_cut

    def test_grid_bisection_is_clean(self):
        # a 4x16 grid has a 4-edge optimal bisection; the multilevel
        # partitioner should get within a small factor of it
        graph = grid_graph(4, 16)
        blocks = partition_graph(graph, 2, seed=0)
        assert cut_size(graph, blocks) <= 16

    def test_recovers_planted_communities(self):
        """On an SBM with strong communities the partitioner should cut
        close to the planted partition's cut."""
        from repro.graph import planted_partition_graph

        graph, planted = planted_partition_graph(
            communities=3,
            community_size=30,
            p_within=0.3,
            p_between=0.01,
            seed=5,
        )
        planted_cut = cut_size(graph, planted)
        blocks = partition_graph(graph, 3, seed=5)
        found_cut = cut_size(graph, blocks)
        assert found_cut <= 1.6 * max(planted_cut, 1)

    def test_planted_generator_shape(self):
        from repro.graph import planted_partition_graph

        graph, planted = planted_partition_graph(2, 10, 0.5, 0.05, seed=1)
        assert graph.vertex_count == 20
        assert [len(b) for b in planted] == [10, 10]
        within = sum(
            1
            for u, v in graph.edges()
            if (u < 10) == (v < 10)
        )
        between = graph.edge_count - within
        assert within > between


class TestValidatePartition:
    def test_wrong_block_count(self, small_graph):
        blocks = partition_graph(small_graph, 2, seed=0)
        with pytest.raises(PartitionError):
            validate_partition(small_graph, blocks, 3)

    def test_duplicate_vertex(self, small_graph):
        blocks = partition_graph(small_graph, 2, seed=0)
        blocks[0].append(blocks[1][0])
        with pytest.raises(PartitionError):
            validate_partition(small_graph, blocks, 2)

    def test_missing_vertex(self, small_graph):
        blocks = partition_graph(small_graph, 2, seed=0)
        blocks[0] = blocks[0][:-1]
        with pytest.raises(PartitionError):
            validate_partition(small_graph, blocks, 2)

    def test_unknown_vertex(self, small_graph):
        blocks = partition_graph(small_graph, 2, seed=0)
        blocks[0].append(10_000)
        with pytest.raises(PartitionError):
            validate_partition(small_graph, blocks, 2)
