"""Unit tests for graph schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.graph import GraphSchema, make_schema


class TestSchemaConstruction:
    def test_from_dict_round_trip(self):
        data = {
            "person": {"gender": ["male", "female"]},
            "company": {"company_type": ["internet", "software"]},
        }
        schema = GraphSchema.from_dict(data)
        assert schema.to_dict() == {
            "person": {"gender": ["female", "male"]},
            "company": {"company_type": ["internet", "software"]},
        }

    def test_duplicate_type_rejected(self):
        schema = GraphSchema()
        schema.add_type("t", {"a": ["x"]})
        with pytest.raises(SchemaError):
            schema.add_type("t", {"a": ["x"]})

    def test_type_without_attributes_rejected(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.add_type("t", {})

    def test_empty_label_universe_rejected(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.add_type("t", {"a": []})

    def test_make_schema_shape(self):
        schema = make_schema(3, 2, 5)
        assert len(schema) == 3
        assert schema.attribute_count() == 6
        assert schema.label_count() == 30
        # attribute names are unique across types (Definition 1)
        all_attrs = [
            attr for t in schema.type_names for attr in schema.attributes_of(t)
        ]
        assert len(all_attrs) == len(set(all_attrs))


class TestSchemaQueries:
    def test_contains_and_type_names(self):
        schema = make_schema(2, 1, 3)
        assert "t0" in schema
        assert "nope" not in schema
        assert schema.type_names == ["t0", "t1"]

    def test_unknown_type_raises(self):
        schema = make_schema(1, 1, 3)
        with pytest.raises(SchemaError):
            schema.type_spec("missing")

    def test_labels_of(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x", "y"]}})
        assert schema.labels_of("t", "a") == frozenset({"x", "y"})
        with pytest.raises(SchemaError):
            schema.labels_of("t", "b")


class TestVertexValidation:
    def test_valid_vertex_passes(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x", "y"]}})
        schema.validate_vertex("t", {"a": frozenset({"x"})})

    def test_vertex_may_omit_attributes(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x"], "b": ["z"]}})
        schema.validate_vertex("t", {})

    def test_unknown_label_rejected(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x"]}})
        with pytest.raises(SchemaError):
            schema.validate_vertex("t", {"a": frozenset({"bogus"})})

    def test_unknown_attribute_rejected(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x"]}})
        with pytest.raises(SchemaError):
            schema.validate_vertex("t", {"other": frozenset({"x"})})

    def test_unknown_type_rejected(self):
        schema = GraphSchema.from_dict({"t": {"a": ["x"]}})
        with pytest.raises(SchemaError):
            schema.validate_vertex("zzz", {})


class TestSchemaEquality:
    def test_equal_schemas(self):
        a = make_schema(2, 1, 3)
        b = make_schema(2, 1, 3)
        assert a == b

    def test_different_schemas(self):
        assert make_schema(2, 1, 3) != make_schema(2, 1, 4)
