"""Unit tests for the VBV/LBV bit-vector index (Figure 7)."""

from repro.cloud import CloudIndex
from repro.graph import AttributedGraph


def indexed_graph() -> tuple[AttributedGraph, list[int]]:
    """A tiny Go-like graph: block = {0, 1}, neighbour 2 outside."""
    graph = AttributedGraph()
    graph.add_vertex(0, "person", {"occupation": ["gD"], "gender": ["gC"]})
    graph.add_vertex(1, "person", {"occupation": ["gE"], "gender": ["gC"]})
    graph.add_vertex(2, "company", {"company_type": ["gA"]})
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    return graph, [0, 1]


class TestVbv:
    def test_vbv_bits_reflect_label_groups(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        assert index.vbv[("gender", "gC")] == 0b11  # both block vertices
        assert index.vbv[("occupation", "gD")] == 0b01  # only vertex 0
        assert index.vbv[("occupation", "gE")] == 0b10

    def test_type_bits(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        assert index.type_bits["person"] == 0b11
        assert "company" not in index.type_bits  # vertex 2 is not indexed

    def test_candidate_center_mask_intersects_constraints(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        query_vertex = graph.vertex(0)  # person with gC and gD
        mask = index.candidate_center_mask(query_vertex)
        assert mask == 0b01

    def test_unknown_group_yields_empty_mask(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        from repro.graph import VertexData

        impossible = VertexData(9, "person", {"gender": frozenset({"nope"})})
        assert index.candidate_center_mask(impossible) == 0

    def test_candidates_from_mask(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        assert sorted(index.candidates_from_mask(0b11)) == [0, 1]
        assert list(index.candidates_from_mask(0)) == []


class TestLbv:
    def test_lbv_includes_out_of_block_neighbors(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        # vertex 1's neighbours: 0 (gC,gD) and 2 (gA) -> all three groups set
        bits = index.lbv[1]
        for key in (("gender", "gC"), ("occupation", "gD"), ("company_type", "gA")):
            assert bits & (1 << index.group_bit[key])

    def test_neighborhood_supports(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        need_ga = index.query_neighbor_mask([graph.vertex(2)])
        assert index.neighborhood_supports(1, need_ga)
        assert not index.neighborhood_supports(0, need_ga)

    def test_unknown_leaf_group_is_unmatchable(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        from repro.graph import VertexData

        alien = VertexData(9, "x", {"a": frozenset({"unknown"})})
        assert index.query_neighbor_mask([alien]) == -1
        assert not index.neighborhood_supports(0, -1)

    def test_empty_leaf_list_mask(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        assert index.query_neighbor_mask([]) == 0
        assert index.neighborhood_supports(0, 0)


class TestAccounting:
    def test_size_scales_with_block(self, figure1_pipeline):
        pipe = figure1_pipeline
        full = CloudIndex.build(
            pipe.transform.gk, sorted(pipe.transform.gk.vertex_ids())
        )
        block_only = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        assert block_only.size_bytes() < full.size_bytes()

    def test_build_time_recorded(self):
        graph, block = indexed_graph()
        index = CloudIndex.build(graph, block)
        assert index.build_seconds >= 0.0
