"""Property-based tests (hypothesis) on the core invariants.

The heaviest invariant — end-to-end exactness of the whole pipeline
against the VF2 oracle — is exercised over randomly generated graphs,
queries, privacy parameters and strategies.
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.anonymize import label_combination_cost
from repro.anonymize.eff import cost_based_grouping
from repro.anonymize.strategies import StrategyContext, group_sizes
from repro.cloud import cover_cost, is_vertex_cover, minimum_weighted_vertex_cover
from repro.graph import AttributedGraph, make_schema, random_attributed_graph
from repro.kauto import (
    build_k_automorphic_graph,
    partition_graph,
    validate_partition,
    verify_k_automorphism,
)
from repro.matching import find_subgraph_matches, match_key
from repro.outsource import build_outsourced_graph, recover_gk
from repro.workloads import random_walk_query

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def small_random_graph(seed: int, n: int) -> AttributedGraph:
    schema = make_schema(2, 1, 4)
    return random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed), schema


class TestEndToEndExactness:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(20, 60),
        k=st.integers(2, 4),
        edges=st.integers(1, 4),
        method=st.sampled_from(["EFF", "RAN", "FSIM", "BAS"]),
    )
    def test_pipeline_equals_oracle(self, seed, n, k, edges, method):
        graph, schema = small_random_graph(seed, n)
        query = random_walk_query(graph, edges, seed=seed + 1)
        system = PrivacyPreservingSystem.setup(
            graph,
            schema,
            SystemConfig(k=k, method=MethodConfig.from_name(method), seed=seed),
        )
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, graph)}
        assert {match_key(m) for m in outcome.matches} == oracle


class TestKAutomorphismProperties:
    @SLOW
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 80), k=st.integers(2, 5))
    def test_transform_invariants(self, seed, n, k):
        graph, _ = small_random_graph(seed, n)
        result = build_k_automorphic_graph(graph, k, seed=seed)
        # 1. verified k-automorphic
        verify_k_automorphism(result.gk, result.avt)
        # 2. id-preserving supergraph
        assert graph.vertex_id_set() <= result.gk.vertex_id_set()
        assert all(result.gk.has_edge(u, v) for u, v in graph.edges())
        # 3. block sizes are equal and multiply out to |V(Gk)|
        assert result.gk.vertex_count == k * result.avt.row_count
        # 4. Go recovery is exact
        outsourced = build_outsourced_graph(result.gk, result.avt)
        assert recover_gk(outsourced, result.avt).structure_equal(result.gk)

    @SLOW
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 80), k=st.integers(2, 5))
    def test_partition_is_valid(self, seed, n, k):
        graph, _ = small_random_graph(seed, n)
        blocks = partition_graph(graph, k, seed=seed)
        validate_partition(graph, blocks, k)


class TestGroupingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 30),
        theta=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    def test_grouping_partitions_and_respects_theta(self, n, theta, seed):
        import random

        labels = [f"l{i}" for i in range(n)]
        rng = random.Random(seed)
        g = {label: rng.random() for label in labels}
        s = {label: rng.random() for label in labels}
        groups = cost_based_grouping(
            labels, theta, StrategyContext("t", "a", g, s, random.Random(seed))
        )
        flat = sorted(label for grp in groups for label in grp)
        assert flat == sorted(labels)
        if n >= theta:
            assert all(len(grp) >= theta for grp in groups)
        sizes = group_sizes(n, theta)
        assert sorted(len(grp) for grp in groups) == sorted(sizes)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 6), seed=st.integers(0, 50))
    def test_eff_is_locally_optimal_under_swaps(self, n, seed):
        """No single cross-group swap can improve EFF's final grouping."""
        import random

        labels = [f"l{i}" for i in range(2 * n)]
        rng = random.Random(seed)
        g = {label: rng.random() for label in labels}
        s = {label: rng.random() for label in labels}
        groups = cost_based_grouping(
            labels, 2, StrategyContext("t", "a", g, s, random.Random(seed))
        )
        base = label_combination_cost(groups, g, s)
        for gi, gj in itertools.combinations(range(len(groups)), 2):
            for a in range(len(groups[gi])):
                for b in range(len(groups[gj])):
                    swapped = [list(grp) for grp in groups]
                    swapped[gi][a], swapped[gj][b] = swapped[gj][b], swapped[gi][a]
                    assert label_combination_cost(swapped, g, s) >= base - 1e-9


class TestVertexCoverProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 8),
        density=st.floats(0.2, 0.9),
        seed=st.integers(0, 1000),
    )
    def test_exact_cover_optimality(self, n, density, seed):
        import random

        rng = random.Random(seed)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < density
        ]
        if not edges:
            edges = [(0, 1)]
        weights = {v: rng.uniform(0.1, 5.0) for v in range(n)}
        cover = minimum_weighted_vertex_cover(edges, weights)
        assert is_vertex_cover(edges, cover)
        # brute force optimum
        vertices = sorted({v for e in edges for v in e})
        best = min(
            cover_cost(set(combo), weights)
            for r in range(len(vertices) + 1)
            for combo in itertools.combinations(vertices, r)
            if is_vertex_cover(edges, set(combo))
        )
        assert cover_cost(cover, weights) <= best + 1e-9


class TestStarMatchingEquivalence:
    @SLOW
    @given(seed=st.integers(0, 5_000), n=st.integers(15, 50), k=st.integers(2, 3))
    def test_algorithm1_equals_restricted_vf2(self, seed, n, k):
        """Algorithm 1 == VF2 with the center anchored in B1, on
        randomized published graphs and stars."""
        from repro.anonymize import anonymize_query, build_lct, cost_based_grouping
        from repro.cloud import CloudIndex
        from repro.cloud.star_matching import match_star
        from repro.graph import compute_statistics
        from repro.matching import star_as_graph, star_of
        from repro.outsource import build_outsourced_graph

        graph, schema = small_random_graph(seed, n)
        query = random_walk_query(graph, 3, seed=seed + 3)
        lct = build_lct(
            schema,
            2,
            cost_based_grouping,
            graph_stats=compute_statistics(graph),
            seed=seed,
        )
        transform = build_k_automorphic_graph(lct.apply_to_graph(graph), k, seed=seed)
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        index = CloudIndex.build(outsourced.graph, outsourced.block_vertices)
        anonymized = anonymize_query(query, lct)
        block = set(outsourced.block_vertices)

        for center in anonymized.vertex_ids():
            star = star_of(anonymized, center)
            got = {match_key(m) for m in match_star(anonymized, star, index, outsourced.graph)}
            want = {
                match_key(m)
                for m in find_subgraph_matches(
                    star_as_graph(anonymized, star),
                    outsourced.graph,
                    candidate_filter=lambda q, v, c=center: q != c or v in block,
                )
            }
            assert got == want


class TestMatcherProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 40))
    def test_extracted_query_always_matches(self, seed, n):
        graph, _ = small_random_graph(seed, n)
        query = random_walk_query(graph, 3, seed=seed)
        matches = find_subgraph_matches(query, graph)
        assert matches
        for match in matches:
            assert len(set(match.values())) == len(match)
            for u, v in query.edges():
                assert graph.has_edge(match[u], match[v])
