"""The binary frame envelope and per-connection channel scoping.

The gateway's wire is the length-prefixed frame layer of
:mod:`repro.core.protocol` (magic + kind code + payload length); the
JSON gateway payload codecs are fuzzed alongside the rest of the
protocol in ``test_protocol_malformed.py``, but binary frames cannot
ride that JSON corruption corpus — this suite drives the envelope
through its own corruption families (bad magic, unknown codes,
truncation, oversize declarations) plus the
:meth:`~repro.core.protocol.NetworkChannel.scope` child-channel
semantics the gateway relies on for isolated byte accounting.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    FRAME_HEADER,
    FRAME_KINDS,
    FRAME_MAGIC,
    MAX_FRAME_PAYLOAD,
    NetworkChannel,
    decode_frame,
    decode_frame_header,
    encode_frame,
)
from repro.exceptions import ProtocolError


class TestFrameRoundTrip:
    @pytest.mark.parametrize("kind", sorted(FRAME_KINDS))
    def test_every_kind_round_trips(self, kind):
        payload = b'{"some":"payload"}'
        kind_out, payload_out, rest = decode_frame(encode_frame(kind, payload))
        assert (kind_out, payload_out, rest) == (kind, payload, b"")

    def test_empty_payload_round_trips(self):
        kind, payload, rest = decode_frame(encode_frame("bye", b""))
        assert (kind, payload, rest) == ("bye", b"", b"")

    def test_concatenated_frames_yield_rest(self):
        stream = encode_frame("hello", b"a") + encode_frame("request", b"bb")
        kind, payload, rest = decode_frame(stream)
        assert (kind, payload) == ("hello", b"a")
        kind, payload, rest = decode_frame(rest)
        assert (kind, payload, rest) == ("request", b"bb", b"")

    def test_header_is_magic_code_length(self):
        frame = encode_frame("answer", b"xyz")
        magic, code, length = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        assert magic == FRAME_MAGIC
        assert code == FRAME_KINDS["answer"]
        assert length == 3


class TestFrameEncodeErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown gateway frame kind"):
            encode_frame("telepathy", b"")

    def test_oversize_payload_rejected(self):
        huge = b"x" * (MAX_FRAME_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="payload"):
            encode_frame("answer", huge)


class TestFrameDecodeErrors:
    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_header(b"RPG")

    def test_bad_magic_rejected(self):
        header = struct.pack(">4sBI", b"EVIL", FRAME_KINDS["hello"], 0)
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame_header(header)

    def test_unknown_code_rejected(self):
        header = struct.pack(">4sBI", FRAME_MAGIC, 200, 0)
        with pytest.raises(ProtocolError, match="frame"):
            decode_frame_header(header)

    def test_oversize_declared_length_rejected(self):
        header = struct.pack(
            ">4sBI", FRAME_MAGIC, FRAME_KINDS["hello"], MAX_FRAME_PAYLOAD + 1
        )
        with pytest.raises(ProtocolError, match="payload"):
            decode_frame_header(header)

    def test_truncated_payload_rejected(self):
        frame = encode_frame("request", b"0123456789")
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(frame[:-3])

    @settings(max_examples=80, deadline=None)
    @given(data=st.binary(max_size=64))
    def test_arbitrary_bytes_never_leak_raw_errors(self, data):
        try:
            decode_frame(data)
        except ProtocolError:
            pass


class TestChannelScope:
    def test_child_is_isolated_until_close(self):
        parent = NetworkChannel()
        child = parent.scope()
        child.transmit("query", b"x" * 10)
        assert parent.total_bytes() == 0
        assert child.total_bytes() == 10

    def test_close_merges_into_parent(self):
        parent = NetworkChannel()
        parent.transmit("upload", b"x" * 5)
        child = parent.scope()
        child.transmit("query", b"x" * 10)
        child.transmit("answer", b"x" * 20)
        child.close()
        assert parent.total_bytes() == 35
        assert parent.total_bytes("query") == 10
        assert parent.total_bytes("answer") == 20

    def test_close_is_idempotent(self):
        parent = NetworkChannel()
        child = parent.scope()
        child.transmit("query", b"x" * 10)
        child.close()
        child.close()
        assert parent.total_bytes() == 10

    def test_root_close_is_a_no_op(self):
        root = NetworkChannel()
        root.transmit("query", b"x" * 10)
        root.close()
        assert root.total_bytes() == 10

    def test_context_manager_merges(self):
        parent = NetworkChannel()
        with parent.scope() as child:
            child.transmit("query", b"x" * 7)
        assert parent.total_bytes() == 7

    def test_child_inherits_cost_model(self):
        parent = NetworkChannel(
            bandwidth_bytes_per_sec=100.0, latency_seconds=0.5
        )
        child = parent.scope()
        assert child.bandwidth_bytes_per_sec == 100.0
        assert child.latency_seconds == 0.5
        assert child.transmit("query", b"x" * 100) == pytest.approx(1.5)

    def test_sibling_scopes_do_not_interfere(self):
        parent = NetworkChannel()
        left, right = parent.scope(), parent.scope()
        left.transmit("query", b"x" * 3)
        right.transmit("query", b"x" * 4)
        left.close()
        assert parent.total_bytes() == 3
        right.close()
        assert parent.total_bytes() == 7

    def test_nested_scopes_roll_up(self):
        root = NetworkChannel()
        child = root.scope()
        grandchild = child.scope()
        grandchild.transmit("query", b"x" * 9)
        grandchild.close()
        assert child.total_bytes() == 9
        assert root.total_bytes() == 0
        child.close()
        assert root.total_bytes() == 9
