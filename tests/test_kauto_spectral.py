"""Tests for the spectral partitioner."""

import pytest

pytest.importorskip("scipy", reason="spectral partitioning needs the solver stack")

from repro.exceptions import PartitionError
from repro.graph import (
    AttributedGraph,
    cycle_graph,
    grid_graph,
    planted_partition_graph,
)
from repro.kauto import (
    cut_size,
    partition_graph,
    spectral_partition,
    validate_partition,
)


class TestSpectralPartition:
    def test_valid_partition(self, small_graph):
        for k in (2, 3, 4):
            blocks = spectral_partition(small_graph, k)
            validate_partition(small_graph, blocks, k)

    def test_grid_bisection_optimal(self):
        graph = grid_graph(4, 16)
        blocks = spectral_partition(graph, 2)
        assert cut_size(graph, blocks) <= 6  # optimal is 4

    def test_recovers_planted_communities(self):
        graph, planted = planted_partition_graph(3, 30, 0.3, 0.01, seed=5)
        blocks = spectral_partition(graph, 3)
        assert cut_size(graph, blocks) <= 1.2 * max(cut_size(graph, planted), 1)

    def test_k1(self, small_graph):
        blocks = spectral_partition(small_graph, 1)
        assert blocks == [sorted(small_graph.vertex_ids())]

    def test_invalid_k(self, small_graph):
        with pytest.raises(PartitionError):
            spectral_partition(small_graph, 0)

    def test_tiny_graph(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "t")
        graph.add_vertex(1, "t")
        graph.add_edge(0, 1)
        blocks = spectral_partition(graph, 2)
        validate_partition(graph, blocks, 2)

    def test_cycle_split_is_contiguous_quality(self):
        graph = cycle_graph(40)
        blocks = spectral_partition(graph, 2)
        # optimal cut of a cycle is 2
        assert cut_size(graph, blocks) <= 4

    def test_competitive_with_multilevel_on_clustered_graph(self):
        graph, _ = planted_partition_graph(2, 40, 0.25, 0.01, seed=3)
        spectral_cut = cut_size(graph, spectral_partition(graph, 2))
        multilevel_cut = cut_size(graph, partition_graph(graph, 2, seed=3))
        assert spectral_cut <= 1.5 * max(multilevel_cut, 1)


class TestSpectralInsideTransform:
    def test_builder_accepts_spectral_partitioner(self, small_graph):
        from repro.kauto import build_k_automorphic_graph, verify_k_automorphism

        result = build_k_automorphic_graph(
            small_graph, 3, partitioner=spectral_partition
        )
        verify_k_automorphism(result.gk, result.avt)

    def test_full_pipeline_with_spectral_partitioner(self, figure1, figure1_query):
        from repro.anonymize import (
            anonymize_query,
            build_lct,
            cost_based_grouping,
        )
        from repro.client import expand_rin, filter_candidates
        from repro.cloud import CloudServer
        from repro.graph import compute_statistics
        from repro.kauto import build_k_automorphic_graph
        from repro.matching import find_subgraph_matches, match_key
        from repro.outsource import build_outsourced_graph

        graph, schema = figure1
        lct = build_lct(
            schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph)
        )
        transform = build_k_automorphic_graph(
            lct.apply_to_graph(graph), 2, partitioner=spectral_partition
        )
        outsourced = build_outsourced_graph(transform.gk, transform.avt)
        cloud = CloudServer(outsourced.graph, transform.avt, outsourced.block_vertices)
        answer = cloud.answer(anonymize_query(figure1_query, lct))
        expanded = expand_rin(answer.matches, transform.avt)
        got = {
            match_key(m)
            for m in filter_candidates(expanded.matches, graph, figure1_query).matches
        }
        oracle = {
            match_key(m) for m in find_subgraph_matches(figure1_query, graph)
        }
        assert got == oracle
