"""Unit tests for the columnar MatchTable representation and codecs."""

from array import array

import pytest

from repro.cloud.cache import (
    leaf_role_order,
    matches_to_roles,
    roles_to_matches,
    roles_to_table,
    star_signature,
    table_to_roles,
)
from repro.core.protocol import (
    decode_answer,
    decode_answer_table,
    encode_answer,
    encode_answer_table,
)
from repro.exceptions import ProtocolError
from repro.matching import (
    MatchTable,
    RowInterner,
    Star,
    dedupe_rows,
    row_getter,
    star_of,
    vec,
)


class TestRowGetter:
    def test_multi_column(self):
        getter = row_getter([2, 0])
        assert getter((10, 11, 12)) == (12, 10)

    def test_single_column_returns_tuple(self):
        getter = row_getter([1])
        assert getter((10, 11, 12)) == (11,)

    def test_zero_columns(self):
        getter = row_getter([])
        assert getter((10, 11)) == ()


class TestMatchTable:
    def test_from_matches_round_trip(self):
        matches = [{1: 10, 2: 20}, {2: 21, 1: 11}]
        table = MatchTable.from_matches(matches, (1, 2))
        assert table.rows == [(10, 20), (11, 21)]
        assert table.to_matches() == matches

    def test_from_rows_validates_width(self):
        with pytest.raises(ValueError):
            MatchTable.from_rows((1, 2), [(10, 20), (30,)])

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            MatchTable((1, 1))

    def test_column_lookup(self):
        table = MatchTable((3, 1, 2))
        assert table.column_of(1) == 1
        assert table.has_column(2)
        assert not table.has_column(9)

    def test_project_rows_reorders(self):
        table = MatchTable((1, 2, 3), [(10, 20, 30), (11, 21, 31)])
        assert table.project_rows([3, 1]) == [(30, 10), (31, 11)]
        # identical order short-circuits to a copy
        copy = table.project_rows((1, 2, 3))
        assert copy == table.rows and copy is not table.rows

    def test_projected_and_eq(self):
        table = MatchTable((1, 2), [(10, 20)])
        assert table.projected((2, 1)) == MatchTable((2, 1), [(20, 10)])
        assert table != MatchTable((1, 2), [(10, 21)])

    def test_deduped_first_seen_order(self):
        table = MatchTable((1,), [(3,), (1,), (3,), (2,), (1,)])
        assert table.deduped().rows == [(3,), (1,), (2,)]

    def test_dedupe_rows_keeps_first(self):
        assert dedupe_rows([(1, 2), (1, 2), (2, 1)]) == [(1, 2), (2, 1)]

    def test_iter_and_len(self):
        table = MatchTable((1, 2), [(10, 20), (11, 21)])
        assert len(table) == 2
        assert list(table) == [(10, 20), (11, 21)]


class TestFlatColumnStorage:
    """The flat-column physical layout behind the same MatchTable API."""

    def _columnar(self):
        cols = [vec.flat_of([10, 11, 12]), vec.flat_of([20, 21, 22])]
        return MatchTable.from_columns((1, 2), cols, 3)

    def test_from_columns_is_columnar_until_rows_read(self):
        table = self._columnar()
        assert table.is_columnar()
        assert len(table) == 3
        # materializing .rows yields Python-int tuples and drops the
        # column vectors for good (mutation through .rows stays safe)
        rows = table.rows
        assert rows == [(10, 20), (11, 21), (12, 22)]
        assert all(type(v) is int for row in rows for v in row)
        assert not table.is_columnar()
        assert table.columns() is None

    def test_from_columns_width_zero_stays_rows_backed(self):
        table = MatchTable.from_columns((), [], 4)
        assert not table.is_columnar()
        assert table.rows == [(), (), (), ()]

    def test_from_flat_rows_row_major(self):
        buf = array("q", [10, 20, 11, 21, 12, 22])
        table = MatchTable.from_flat_rows((1, 2), buf, 2)
        assert len(table) == 3
        assert table.rows == [(10, 20), (11, 21), (12, 22)]

    def test_from_flat_rows_rejects_ragged_buffer(self):
        with pytest.raises(ValueError):
            MatchTable.from_flat_rows((1, 2), array("q", [10, 20, 11]), 2)

    def test_as_columns_converts_without_caching(self):
        table = MatchTable((1, 2), [(10, 20), (11, 21)])
        cols = table.as_columns()
        assert cols is not None
        assert [vec.ints(col) for col in cols] == [[10, 11], [20, 21]]
        assert not table.is_columnar()  # conversion never caches
        # later row mutations therefore cannot go stale
        table.rows.append((12, 22))
        cols2 = table.as_columns()
        assert cols2 is not None
        assert [vec.ints(col) for col in cols2] == [[10, 11, 12], [20, 21, 22]]

    def test_as_columns_none_for_non_int64_rows(self):
        table = MatchTable((1,), [(1 << 70,)])
        assert table.as_columns() is None
        table = MatchTable((1,), [("nope",)])  # untrusted decoded value
        assert table.as_columns() is None

    def test_projected_preserves_columnar_layout(self):
        table = self._columnar()
        swapped = table.projected((2, 1))
        assert swapped.is_columnar()
        assert swapped.rows == [(20, 10), (21, 11), (22, 12)]

    def test_project_rows_from_columns(self):
        table = self._columnar()
        assert table.project_rows([2]) == [(20,), (21,), (22,)]

    def test_deduped_matches_row_kernel(self):
        rows = [(3, 1), (1, 2), (3, 1), (2, 2), (1, 2)]
        reference = MatchTable((1, 2), list(rows)).deduped().rows
        cols = [vec.flat_of(c) for c in zip(*rows)]
        table = MatchTable.from_columns((1, 2), cols, len(rows))
        if vec.HAVE_NUMPY:
            with vec.override("numpy"):
                assert table.deduped().rows == reference
        else:
            assert table.deduped().rows == reference

    def test_to_matches_from_columns(self):
        assert self._columnar().to_matches() == [
            {1: 10, 2: 20},
            {1: 11, 2: 21},
            {1: 12, 2: 22},
        ]


class TestRowInterner:
    def test_duplicates_share_one_object(self):
        interner = RowInterner()
        a = interner.intern((1, 2))
        b = interner.intern((1, 2))
        assert a is b
        assert len(interner) == 1

    def test_intern_all_preserves_order(self):
        interner = RowInterner()
        rows = [(1,), (2,), (1,)]
        out = interner.intern_all(rows)
        assert out == rows
        assert out[0] is out[2]


class TestCacheCodecEquivalence:
    """The columnar cache codec writes the dict codec's wire format."""

    def _star_table(self, pipe):
        star = star_of(pipe.qo, 1)
        from repro.cloud import CloudIndex, match_star_table

        index = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        return star, match_star_table(
            pipe.qo, star, index, pipe.outsourced.graph
        )

    def test_roles_match_dict_codec(self, figure1_pipeline):
        pipe = figure1_pipeline
        star, table = self._star_table(pipe)
        role_order = leaf_role_order(pipe.qo, star)
        roles = table_to_roles(table, star, role_order)
        assert roles == matches_to_roles(table.to_matches(), star, role_order)
        # role-form round trip restores the canonical star schema
        back = roles_to_table(roles, star, role_order)
        assert back == table
        assert back.to_matches() == roles_to_matches(roles, star, role_order)

    def test_relabeling_onto_equivalent_star(self, figure1_pipeline):
        """Roles cached for one star re-label onto another star's ids."""
        pipe = figure1_pipeline
        star, table = self._star_table(pipe)
        role_order = leaf_role_order(pipe.qo, star)
        roles = table_to_roles(table, star, role_order)
        renamed = Star(center=star.center, leaves=star.leaves)
        assert star_signature(pipe.qo, renamed) == star_signature(pipe.qo, star)
        assert roles_to_table(roles, renamed, role_order).to_matches() == (
            roles_to_matches(roles, renamed, role_order)
        )


class TestProtocolTableFraming:
    def test_bytes_identical_to_dict_encoder(self):
        matches = [{1: 10, 2: 20}, {1: 11, 2: 21}]
        order = [1, 2]
        table = MatchTable.from_matches(matches, order)
        for expanded in (False, True):
            assert encode_answer_table(table, order, expanded) == encode_answer(
                matches, order, expanded
            )

    def test_round_trip(self):
        table = MatchTable((2, 1), [(20, 10), (21, 11)])
        payload = encode_answer_table(table, [1, 2], True)
        decoded, expanded = decode_answer_table(payload)
        assert expanded is True
        assert decoded.schema == (1, 2)
        assert decoded.rows == [(10, 20), (11, 21)]
        # and the dict decoder reads the same message
        dict_decoded, _ = decode_answer(payload)
        assert dict_decoded == decoded.to_matches()

    def test_empty_table(self):
        table = MatchTable((1, 2))
        decoded, expanded = decode_answer_table(
            encode_answer_table(table, [1, 2], False)
        )
        assert decoded.rows == [] and expanded is False

    def test_malformed_rows_rejected(self):
        with pytest.raises(ProtocolError):
            decode_answer_table(b'{"order":[1,2],"rows":[[1]],"expanded":false}')
        with pytest.raises(ProtocolError):
            decode_answer_table(b"not json")
        with pytest.raises(ProtocolError):
            decode_answer_table(b'{"rows":[],"expanded":false}')
