"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph import example_query, example_social_network, save_graph


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "matches (2)" in out

    def test_demo_with_bas(self, capsys):
        assert main(["demo", "--method", "BAS", "--k", "3"]) == 0
        assert "matches (2)" in capsys.readouterr().out


class TestPublishAndQuery:
    def test_publish_then_query(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"

        assert main(["publish", str(graph_path), str(deployment), "--k", "2"]) == 0
        publish_out = json.loads(capsys.readouterr().out)
        assert publish_out["uploaded_edges"] > 0
        assert (deployment / "cloud" / "graph.json").exists()

        assert (
            main(["query", str(deployment), str(graph_path), str(query_path)]) == 0
        )
        query_out = json.loads(capsys.readouterr().out)
        assert len(query_out["matches"]) == 2
        assert query_out["candidates"] >= 2

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_publish_then_batch(self, tmp_path, capsys, backend):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"

        assert main(["publish", str(graph_path), str(deployment), "--k", "2"]) == 0
        capsys.readouterr()

        assert (
            main(
                [
                    "batch",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    str(query_path),
                    "--workers",
                    "2",
                    "--backend",
                    backend,
                    "--repeat",
                    "2",
                ]
            )
            == 0
        )
        batch_out = json.loads(capsys.readouterr().out)
        assert batch_out["queries"] == 4
        assert batch_out["backend"] == backend
        assert batch_out["wall_seconds"] >= 0
        assert len(batch_out["per_query"]) == 4
        assert all(entry["matches"] == 2 for entry in batch_out["per_query"])
        # the repeated workload must warm the shared star cache
        assert batch_out["cache"]["hits"] > 0

    def test_publish_with_method(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        save_graph(graph, graph_path)
        assert (
            main(
                [
                    "publish",
                    str(graph_path),
                    str(tmp_path / "dep"),
                    "--method",
                    "RAN",
                    "--k",
                    "3",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["method"] == "RAN"
        assert out["k"] == 3


class TestVerify:
    def test_verify_healthy_deployment(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        save_graph(graph, graph_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment), "--k", "3"]) == 0
        capsys.readouterr()

        assert main(["verify", str(deployment)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["k"] == 3
        assert report["worst_attack_probability"] <= report["bound"] + 1e-9

    def test_verify_detects_broken_symmetry(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        save_graph(graph, graph_path)
        deployment = tmp_path / "dep"
        assert (
            main(
                [
                    "publish",
                    str(graph_path),
                    str(deployment),
                    "--k",
                    "2",
                    "--method",
                    "BAS",
                ]
            )
            == 0
        )
        capsys.readouterr()

        # tamper: drop one edge from the published Gk
        from repro.graph import load_graph as _load, save_graph as _save

        published_path = deployment / "cloud" / "graph.json"
        published = _load(published_path)
        edge = next(iter(published.edges()))
        published.remove_edge(*edge)
        _save(published, published_path)

        from repro.exceptions import VerificationError

        with pytest.raises(VerificationError):
            main(["verify", str(deployment)])


class TestDatasets:
    def test_generate_dataset(self, tmp_path, capsys):
        out_path = tmp_path / "web.json"
        assert main(["datasets", "Web-NotreDame", str(out_path), "--scale", "0.05"]) == 0
        assert out_path.exists()
        from repro.graph import load_graph

        graph = load_graph(out_path)
        assert graph.vertex_count > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["datasets", "nope", "out.json"])


class TestTraceExport:
    def _deployment(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment), "--k", "2"]) == 0
        capsys.readouterr()
        return graph_path, query_path, deployment

    def test_query_trace_file_spans_sum_to_wall(self, tmp_path, capsys):
        """Acceptance: span durations sum within 20% of the query wall."""
        graph_path, query_path, deployment = self._deployment(tmp_path, capsys)
        trace_path = tmp_path / "out.json"
        assert (
            main(
                [
                    "query",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        from repro.obs import Trace

        trace = Trace.from_dict(doc["trace"])
        names = {span.name for span in trace}
        for expected in (
            "query",
            "client.anonymize",
            "cloud.answer",
            "cloud.decompose",
            "cloud.star_matching",
            "cloud.join",
            "client.expand",
            "client.filter",
        ):
            assert expected in names, f"missing span {expected!r}"
        root = trace.first("query")
        phase_total = sum(
            s.duration for s in trace if s.parent_id == root.span_id
        )
        # 20% relative, with a 2 ms absolute floor: the phases are
        # sub-millisecond, so scheduler noise is a visible fraction
        assert phase_total == pytest.approx(root.duration, rel=0.20, abs=0.002)
        assert doc["metrics"]["matches_total"]["series"][0]["value"] == 2.0

    def test_demo_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "demo.json"
        assert main(["demo", "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {span["name"] for span in doc["trace"]["spans"]}
        assert "publish" in names and "query" in names

    def test_batch_prometheus_export_parses(self, tmp_path, capsys):
        from repro.obs.exporters import PROM_LINE_RE

        graph_path, query_path, deployment = self._deployment(tmp_path, capsys)
        prom_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "batch.json"
        assert (
            main(
                [
                    "batch",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    "--repeat",
                    "2",
                    "--trace",
                    str(trace_path),
                    "--prometheus",
                    str(prom_path),
                ]
            )
            == 0
        )
        text = prom_path.read_text(encoding="utf-8")
        assert text.strip(), "empty Prometheus export"
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"
        assert trace_path.exists()

    def test_batch_process_backend_reports_na_hit_rate(self, tmp_path, capsys):
        """Regression: None hit rate must serialize, not crash a %-format."""
        from repro.cloud.parallel import fork_available

        if not fork_available():
            pytest.skip("fork unavailable")
        graph_path, query_path, deployment = self._deployment(tmp_path, capsys)
        assert (
            main(
                [
                    "batch",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    "--repeat",
                    "2",
                    "--backend",
                    "process",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["cache"]["hit_rate"] is None
        assert out["cache"]["hit_rate_text"] == "n/a"

    def test_batch_thread_backend_reports_numeric_hit_rate(
        self, tmp_path, capsys
    ):
        graph_path, query_path, deployment = self._deployment(tmp_path, capsys)
        assert (
            main(
                [
                    "batch",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    "--repeat",
                    "2",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["cache"]["hit_rate"] is not None
        assert out["cache"]["hit_rate_text"].endswith("%")


class TestProfile:
    def test_profile_prints_table_and_hot_functions(self, capsys):
        assert main(["profile", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "span summary" in out or "profile: demo workload" in out
        assert "% wall" in out
        assert "hottest functions of" in out

    def test_profile_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "profile.json"
        assert main(["profile", "--queries", "1", "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        spans = doc["trace"]["spans"]
        assert any("profile" in span["attributes"] for span in spans)


class TestAudit:
    def test_demo_mode_prints_passing_table(self, capsys):
        assert main(["audit", "--queries-count", "2"]) == 0
        out = capsys.readouterr().out
        assert "k guarantee" in out and "PASS" in out
        assert "false-positive ratio" in out

    def test_demo_mode_json(self, capsys):
        assert main(["audit", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["candidate_set_min"] >= doc["k"]
        assert doc["label_group_min_size"] >= doc["theta"]

    def test_deployment_mode_with_queries_and_prometheus(
        self, tmp_path, capsys
    ):
        from repro.obs.exporters import PROM_LINE_RE

        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment)]) == 0
        capsys.readouterr()

        prom_path = tmp_path / "audit.prom"
        assert (
            main(
                [
                    "audit",
                    str(deployment),
                    "--graph",
                    str(graph_path),
                    "--queries",
                    str(query_path),
                    "--json",
                    "--prometheus",
                    str(prom_path),
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["candidates_total"] > doc["matches_total"] > 0
        assert 0.0 < doc["outsourced_fraction"] < 1.0
        assert doc["per_query"] and doc["per_query"][0]["query_id"]
        text = prom_path.read_text(encoding="utf-8")
        assert "repro_privacy_audit_ok 1" in text
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable: {line!r}"


class TestServe:
    def test_serve_workload_and_scrape(self, tmp_path, capsys):
        import threading
        import urllib.request

        from repro.obs.exporters import PROM_LINE_RE

        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment)]) == 0
        capsys.readouterr()

        port_file = tmp_path / "port.txt"
        events_path = tmp_path / "events.jsonl"
        scraped: dict[str, str] = {}

        def scrape():
            import time

            for _ in range(100):
                if port_file.is_file() and port_file.read_text().strip():
                    break
                time.sleep(0.05)
            port = int(port_file.read_text())
            base = f"http://127.0.0.1:{port}"
            for path in ("/metrics", "/healthz", "/readyz", "/traces"):
                with urllib.request.urlopen(base + path, timeout=5) as rsp:
                    scraped[path] = rsp.read().decode("utf-8")

        scraper = threading.Thread(target=scrape, daemon=True)
        scraper.start()
        code = main(
            [
                "serve",
                str(deployment),
                str(graph_path),
                str(query_path),
                "--repeat",
                "3",
                "--events",
                str(events_path),
                "--port-file",
                str(port_file),
                "--linger",
                "3",
            ]
        )
        scraper.join(timeout=30)
        assert code == 0
        assert set(scraped) == {"/metrics", "/healthz", "/readyz", "/traces"}
        for line in scraped["/metrics"].strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable: {line!r}"
        assert "repro_query_seconds_window_p95" in scraped["/metrics"]
        assert "repro_privacy_audit_k" in scraped["/metrics"]
        assert json.loads(scraped["/readyz"]) == {"ready": True}
        health = json.loads(scraped["/healthz"])
        assert health["status"] == "ok"
        traces = json.loads(scraped["/traces"])
        assert traces["count"] >= 1
        assert all(t["query_id"].startswith("q-") for t in traces["traces"])
        # the JSONL event log was written with matching query ids
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line.strip()
        ]
        assert {e["event"] for e in events} >= {"serve", "span", "query"}
        logged_ids = {e["query_id"] for e in events if "query_id" in e}
        ring_ids = {t["query_id"] for t in traces["traces"]}
        assert ring_ids <= logged_ids

    def test_serve_sample_rate_zero_logs_no_query_events(
        self, tmp_path, capsys
    ):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment)]) == 0
        capsys.readouterr()

        events_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "serve",
                    str(deployment),
                    str(graph_path),
                    str(query_path),
                    "--events",
                    str(events_path),
                    "--sample-rate",
                    "0.0",
                ]
            )
            == 0
        )
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line.strip()
        ]
        # only the non-query "serve" lifecycle event is written
        assert {e["event"] for e in events} == {"serve"}


class TestExplain:
    def _deployment(self, tmp_path, capsys):
        graph, _ = example_social_network()
        graph_path = tmp_path / "g.json"
        query_path = tmp_path / "q.json"
        save_graph(graph, graph_path)
        save_graph(example_query(), query_path)
        deployment = tmp_path / "dep"
        assert main(["publish", str(graph_path), str(deployment)]) == 0
        capsys.readouterr()
        return str(deployment), str(graph_path), str(query_path)

    def test_local_explain_renders_phases(self, tmp_path, capsys):
        dep, graph, query = self._deployment(tmp_path, capsys)
        assert main(["explain", dep, graph, query]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN query q-" in out
        assert "star(s)" in out
        assert "phases:" in out
        assert "cloud.answer" in out and "client.filter" in out
        assert "candidates=" in out and "results=" in out

    def test_sharded_explain_shows_shard_lanes(self, tmp_path, capsys):
        dep, graph, query = self._deployment(tmp_path, capsys)
        assert main(["explain", dep, graph, query, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "shards:" in out
        assert "shard 0:" in out and "shard 1:" in out

    def test_json_and_chrome_outputs(self, tmp_path, capsys):
        dep, graph, query = self._deployment(tmp_path, capsys)
        chrome_path = tmp_path / "trace.chrome.json"
        assert (
            main(
                [
                    "explain", dep, graph, query,
                    "--json", "--chrome", str(chrome_path),
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["query_id"].startswith("q-")
        assert report["span_count"] > 0
        assert report["total_seconds"] > 0
        phase_names = [phase["name"] for phase in report["phases"]]
        assert "query" in phase_names
        chrome = json.loads(chrome_path.read_text(encoding="utf-8"))
        events = chrome["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} >= {"query", "cloud.answer"}


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
