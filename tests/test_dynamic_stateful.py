"""Stateful property testing of DynamicRelease (hypothesis state machine).

Random interleavings of edge insertions, edge deletions and vertex
insertions must preserve, at every step:

* the k-automorphism invariant of the published graph;
* the id-preserving supergraph property (``G ⊆ Gk``);
* end-to-end exactness of a probe query (checked at teardown).
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.anonymize import build_lct, cost_based_grouping
from repro.graph import compute_statistics, make_schema, random_attributed_graph
from repro.graph.validation import assert_supergraph
from repro.kauto import build_k_automorphic_graph, verify_k_automorphism
from repro.kauto.dynamic import DynamicRelease


class DynamicReleaseMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 50))
    def setup(self, seed):
        self.schema = make_schema(2, 1, 4)
        graph = random_attributed_graph(
            self.schema, 16, edges_per_vertex=2, seed=seed
        )
        self.lct = build_lct(
            self.schema,
            2,
            cost_based_grouping,
            graph_stats=compute_statistics(graph),
            seed=seed,
        )
        transform = build_k_automorphic_graph(
            self.lct.apply_to_graph(graph), 2, seed=seed
        )
        self.release = DynamicRelease(graph.copy(), transform, self.lct)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(data=st.data())
    def insert_edge(self, data):
        vertices = sorted(self.release.original.vertex_ids())
        u = data.draw(st.sampled_from(vertices), label="u")
        v = data.draw(st.sampled_from(vertices), label="v")
        if u == v:
            return
        self.release.insert_edge(u, v)

    @rule(data=st.data())
    def delete_edge(self, data):
        edges = sorted(self.release.original.edges())
        if not edges:
            return
        u, v = data.draw(st.sampled_from(edges), label="edge")
        self.release.delete_edge(u, v)

    @precondition(lambda self: self.release.original.vertex_count < 40)
    @rule(type_index=st.integers(0, 1), with_label=st.booleans())
    def insert_vertex(self, type_index, with_label):
        vertex_type = f"t{type_index}"
        labels = None
        if with_label:
            attr = self.schema.attributes_of(vertex_type)[0]
            label = sorted(self.schema.labels_of(vertex_type, attr))[0]
            labels = {attr: [label]}
        self.release.insert_vertex(
            self.release.allocate_vertex_id(), vertex_type, labels
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def gk_is_k_automorphic(self):
        verify_k_automorphism(self.release.gk, self.release.avt)

    @invariant()
    def g_is_subgraph_of_gk(self):
        assert_supergraph(self.release.original, self.release.gk)

    @invariant()
    def noise_never_negative(self):
        assert self.release.noise_edge_count() >= 0

    def teardown(self):
        # end-to-end probe: the pipeline on the final state stays exact
        if not hasattr(self, "release"):
            return
        from repro.anonymize import anonymize_query
        from repro.client import expand_rin, filter_candidates
        from repro.cloud import CloudServer
        from repro.matching import find_subgraph_matches, match_key
        from repro.workloads import random_walk_query

        original = self.release.original
        if original.edge_count == 0:
            return
        query = random_walk_query(original, 1, seed=1)
        outsourced = self.release.refresh_outsourced()
        cloud = CloudServer(
            outsourced.graph, self.release.avt, outsourced.block_vertices
        )
        answer = cloud.answer(anonymize_query(query, self.lct))
        expanded = expand_rin(answer.matches, self.release.avt)
        got = {
            match_key(m)
            for m in filter_candidates(expanded.matches, original, query).matches
        }
        oracle = {match_key(m) for m in find_subgraph_matches(query, original)}
        assert got == oracle


DynamicReleaseMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestDynamicRelease = DynamicReleaseMachine.TestCase
