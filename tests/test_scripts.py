"""Smoke tests for the top-level evaluation script."""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"


@pytest.fixture
def run_evaluation(monkeypatch):
    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        import run_evaluation as module
    finally:
        sys.path.pop(0)
    return module


class TestRunEvaluation:
    def test_writes_report_and_json(self, run_evaluation, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            sys,
            "argv",
            [
                "run_evaluation.py",
                "--out",
                str(tmp_path),
                "--scale",
                "0.08",
                "--queries",
                "2",
                "--ks",
                "2",
                "--sizes",
                "4",
                "--datasets",
                "DBpedia",
            ],
        )
        assert run_evaluation.main() == 0
        report = (tmp_path / "report.md").read_text()
        assert "publish-time (EFF) — DBpedia" in report
        assert "attack resistance" in report

        dump = json.loads((tmp_path / "results.json").read_text())
        assert "DBpedia" in dump["datasets"]
        cells = dump["datasets"]["DBpedia"]["cells"]
        assert any(key.startswith("EFF/k2") for key in cells)
        # attack bound respected in the dump too
        assert dump["datasets"]["DBpedia"]["attacks"]["2"] <= 0.5 + 1e-9 or (
            dump["datasets"]["DBpedia"]["attacks"][2] <= 0.5 + 1e-9
        )
