"""Unit tests for the EFF cost-based grouping heuristic (Section 5.2)."""

import itertools
import random

import pytest

from repro.anonymize import label_combination_cost
from repro.anonymize.eff import cost_based_grouping
from repro.anonymize.strategies import (
    StrategyContext,
    chunk_permutation,
    frequency_similar_grouping,
)


def make_context(graph_freq, workload_freq, seed=0):
    return StrategyContext(
        "t",
        "a",
        graph_frequency=graph_freq,
        workload_frequency=workload_freq,
        rng=random.Random(seed),
    )


class TestCostFunction:
    def test_definition7_arithmetic(self):
        groups = [["a", "b"], ["c", "d"]]
        g = {"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4}
        s = {"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1}
        cost = label_combination_cost(groups, g, s)
        assert cost == pytest.approx(0.3 * 0.7 + 0.7 * 0.3)

    def test_missing_labels_count_zero(self):
        assert label_combination_cost([["zzz"]], {}, {}) == 0.0


class TestEffGrouping:
    def test_partitions_universe(self):
        labels = [f"l{i}" for i in range(8)]
        g = {label: 1 / 8 for label in labels}
        context = make_context(g, g)
        groups = cost_based_grouping(labels, 2, context)
        assert sorted(label for grp in groups for label in grp) == sorted(labels)
        assert all(len(grp) >= 2 for grp in groups)

    def test_reaches_optimum_on_small_instance(self):
        """Exhaustive check: EFF finds the minimum-cost grouping of 6 labels."""
        labels = ["a", "b", "c", "d", "e", "f"]
        g = {"a": 0.05, "b": 0.1, "c": 0.15, "d": 0.2, "e": 0.25, "f": 0.25}
        s = {"a": 0.15, "b": 0.05, "c": 0.2, "d": 0.3, "e": 0.1, "f": 0.2}

        best = min(
            label_combination_cost(chunk_permutation(perm, 2), g, s)
            for perm in itertools.permutations(labels)
        )
        groups = cost_based_grouping(labels, 2, make_context(g, s, seed=3))
        assert label_combination_cost(groups, g, s) == pytest.approx(best)

    def test_no_worse_than_fsim_when_frequencies_correlate(self):
        """The paper's headline: EFF beats FSIM on correlated workloads."""
        labels = [f"l{i}" for i in range(12)]
        # Zipf graph frequencies; query frequencies proportional to them
        g = {label: 1.0 / (i + 1) for i, label in enumerate(labels)}
        total = sum(g.values())
        g = {label: value / total for label, value in g.items()}
        s = dict(g)

        eff_groups = cost_based_grouping(labels, 2, make_context(g, s, seed=1))
        fsim_groups = frequency_similar_grouping(labels, 2, make_context(g, s))
        eff_cost = label_combination_cost(eff_groups, g, s)
        fsim_cost = label_combination_cost(fsim_groups, g, s)
        assert eff_cost < fsim_cost

    def test_converges_within_max_rounds(self):
        labels = [f"l{i}" for i in range(20)]
        rng = random.Random(9)
        g = {label: rng.random() for label in labels}
        s = {label: rng.random() for label in labels}
        # normalizing not required by the cost definition for this test
        groups_few = cost_based_grouping(labels, 2, make_context(g, s, seed=2), max_rounds=10)
        groups_many = cost_based_grouping(labels, 2, make_context(g, s, seed=2), max_rounds=50)
        assert label_combination_cost(groups_few, g, s) == pytest.approx(
            label_combination_cost(groups_many, g, s)
        )

    def test_single_group_universe(self):
        labels = ["a", "b"]
        groups = cost_based_grouping(labels, 2, make_context({}, {}))
        assert groups == [sorted(labels)] or groups == [["a", "b"]] or groups == [["b", "a"]]

    def test_swap_improvements_are_monotone(self):
        """Each accepted swap strictly lowers cost -> final <= initial."""
        labels = [f"l{i}" for i in range(10)]
        rng = random.Random(4)
        g = {label: rng.random() for label in labels}
        s = {label: rng.random() for label in labels}
        context = make_context(g, s, seed=4)
        initial_perm = list(labels)
        context.rng.shuffle(initial_perm)
        initial_cost = label_combination_cost(chunk_permutation(initial_perm, 2), g, s)
        final = cost_based_grouping(labels, 2, make_context(g, s, seed=4))
        assert label_combination_cost(final, g, s) <= initial_cost + 1e-12
