"""Unit tests for system/method configuration."""

import pytest

from repro.anonymize import STRATEGIES
from repro.core import METHOD_NAMES, MethodConfig, SystemConfig
from repro.exceptions import ConfigError, ReproError


class TestMethodConfig:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_all_paper_methods_resolve(self, name):
        method = MethodConfig.from_name(name)
        assert method.name == name

    def test_bas_shares_eff_grouping_but_uploads_gk(self):
        bas = MethodConfig.from_name("BAS")
        assert bas.upload_full_gk is True
        assert bas.strategy is STRATEGIES["EFF"]

    def test_optimized_methods_upload_go(self):
        for name in ("EFF", "RAN", "FSIM"):
            assert MethodConfig.from_name(name).upload_full_gk is False

    def test_case_insensitive(self):
        assert MethodConfig.from_name("eff").name == "EFF"

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError):
            MethodConfig.from_name("MAGIC")


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.k == 2
        assert config.theta == 2
        assert config.method.name == "EFF"
        assert config.expansion_site == "client"

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            SystemConfig(k=1)

    def test_invalid_theta(self):
        with pytest.raises(ReproError):
            SystemConfig(theta=0)

    def test_invalid_expansion_site(self):
        with pytest.raises(ReproError):
            SystemConfig(expansion_site="moon")

    def test_keyword_only(self):
        """Positional construction is a TypeError, not a silent k=3."""
        with pytest.raises(TypeError):
            SystemConfig(3)  # noqa: the point of the test

    def test_config_error_is_a_repro_error(self):
        with pytest.raises(ConfigError):
            SystemConfig(k=1)
        assert issubclass(ConfigError, ReproError)

    @pytest.mark.parametrize("bad_k", ["3", 2.0, True, None])
    def test_non_int_k_rejected(self, bad_k):
        with pytest.raises(ConfigError):
            SystemConfig(k=bad_k)

    @pytest.mark.parametrize("bad_theta", ["2", 1.5, False])
    def test_non_int_theta_rejected(self, bad_theta):
        with pytest.raises(ConfigError):
            SystemConfig(theta=bad_theta)

    def test_method_name_string_is_coerced(self):
        config = SystemConfig(method="bas")
        assert isinstance(config.method, MethodConfig)
        assert config.method.name == "BAS"

    def test_unknown_method_name_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(method="MAGIC")

    def test_non_method_object_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(method=42)

    def test_negative_tuning_knobs_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(star_cache_size=-1)
        with pytest.raises(ConfigError):
            SystemConfig(star_workers=-1)
        with pytest.raises(ConfigError):
            SystemConfig(max_intermediate_results=-1)

    def test_zero_budget_is_legal(self):
        """0 = 'no intermediate results allowed' (bench skip path)."""
        config = SystemConfig(max_intermediate_results=0)
        assert config.max_intermediate_results == 0
