"""Unit tests for system/method configuration."""

import pytest

from repro.anonymize import STRATEGIES
from repro.core import METHOD_NAMES, MethodConfig, SystemConfig
from repro.exceptions import ReproError


class TestMethodConfig:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_all_paper_methods_resolve(self, name):
        method = MethodConfig.from_name(name)
        assert method.name == name

    def test_bas_shares_eff_grouping_but_uploads_gk(self):
        bas = MethodConfig.from_name("BAS")
        assert bas.upload_full_gk is True
        assert bas.strategy is STRATEGIES["EFF"]

    def test_optimized_methods_upload_go(self):
        for name in ("EFF", "RAN", "FSIM"):
            assert MethodConfig.from_name(name).upload_full_gk is False

    def test_case_insensitive(self):
        assert MethodConfig.from_name("eff").name == "EFF"

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError):
            MethodConfig.from_name("MAGIC")


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.k == 2
        assert config.theta == 2
        assert config.method.name == "EFF"
        assert config.expansion_site == "client"

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            SystemConfig(k=1)

    def test_invalid_theta(self):
        with pytest.raises(ReproError):
            SystemConfig(theta=0)

    def test_invalid_expansion_site(self):
        with pytest.raises(ReproError):
            SystemConfig(expansion_site="moon")
