"""Unit tests for BFS ordering, AVT assembly and block alignment."""

from repro.graph import AttributedGraph
from repro.kauto import align_blocks, bfs_order, build_avt
from repro.kauto.alignment import label_signature
from repro.kauto.edge_copy import copy_crossing_edges


def two_type_graph() -> AttributedGraph:
    graph = AttributedGraph()
    # persons 0-3, companies 4-5
    for vid in range(4):
        graph.add_vertex(vid, "person")
    for vid in (4, 5):
        graph.add_vertex(vid, "company")
    graph.add_edge(0, 4)
    graph.add_edge(1, 4)
    graph.add_edge(2, 5)
    graph.add_edge(3, 5)
    graph.add_edge(0, 1)
    return graph


class TestBfsOrder:
    def test_covers_all_vertices_once(self):
        graph = two_type_graph()
        order = bfs_order(graph, sorted(graph.vertex_ids()))
        assert sorted(order) == sorted(graph.vertex_ids())

    def test_starts_from_highest_degree(self):
        graph = two_type_graph()
        order = bfs_order(graph, sorted(graph.vertex_ids()))
        assert order[0] in (0, 4)  # degree-3 vertices

    def test_restricted_vertex_set(self):
        graph = two_type_graph()
        order = bfs_order(graph, [2, 3, 5])
        assert sorted(order) == [2, 3, 5]

    def test_deterministic(self):
        graph = two_type_graph()
        vertices = sorted(graph.vertex_ids())
        assert bfs_order(graph, vertices) == bfs_order(graph, vertices)


class TestBuildAvt:
    def test_type_aware_rows(self):
        graph = two_type_graph()
        blocks = [[0, 1, 4], [2, 3, 5]]
        avt, noise_ids, padded = build_avt(graph, blocks)
        assert avt.k == 2
        assert not noise_ids  # types perfectly balanced across blocks
        for row in avt.rows():
            types = {padded.vertex(v).vertex_type for v in row}
            assert len(types) == 1

    def test_padding_with_noise_vertices(self):
        graph = two_type_graph()
        blocks = [[0, 1, 2, 4], [3, 5]]  # person imbalance 3 vs 1
        avt, noise_ids, padded = build_avt(graph, blocks)
        assert len(noise_ids) == 2  # two noise persons in block 1
        assert padded.vertex_count == graph.vertex_count + 2
        for noise_id in noise_ids:
            assert padded.vertex(noise_id).vertex_type == "person"
            assert padded.vertex(noise_id).labels == {}

    def test_noise_ids_do_not_collide(self):
        graph = two_type_graph()
        blocks = [[0, 1, 2, 4], [3, 5]]
        _, noise_ids, _ = build_avt(graph, blocks)
        assert min(noise_ids) > max(graph.vertex_ids())


class TestLabelAwareAlignment:
    def labeled_graph(self):
        graph = AttributedGraph()
        # two blocks of persons; one "rare" label per block
        for vid, label in ((0, "x"), (1, "y"), (2, "y"), (3, "x")):
            graph.add_vertex(vid, "person", {"a": [label]})
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        return graph

    def test_identical_signatures_paired(self):
        graph = self.labeled_graph()
        blocks = [[0, 1], [2, 3]]
        avt, _, _ = build_avt(graph, blocks, label_aware=True)
        for row in avt.rows():
            signatures = {label_signature(graph, v) for v in row}
            assert len(signatures) == 1  # x pairs with x, y with y

    def test_bfs_alignment_may_mix_signatures(self):
        graph = self.labeled_graph()
        blocks = [[0, 1], [2, 3]]
        avt, _, _ = build_avt(graph, blocks, label_aware=False)
        mixed = any(
            len({label_signature(graph, v) for v in row}) > 1
            for row in avt.rows()
        )
        # BFS order starts from degree, not labels: 0 pairs with 2 here
        assert mixed

    def test_label_aware_reduces_group_widening(self, small_graph):
        """Row-unions produce no wider label sets than BFS alignment."""
        from repro.kauto import build_k_automorphic_graph

        def total_labels(result):
            return sum(
                len(values)
                for data in result.gk.vertices()
                for values in data.labels.values()
            )

        bfs = build_k_automorphic_graph(small_graph, 3, seed=5)
        aware = build_k_automorphic_graph(
            small_graph, 3, seed=5, label_aware_alignment=True
        )
        assert total_labels(aware) <= total_labels(bfs)

    def test_label_aware_release_is_still_k_automorphic(self, small_graph):
        from repro.kauto import build_k_automorphic_graph, verify_k_automorphism

        result = build_k_automorphic_graph(
            small_graph, 3, seed=5, label_aware_alignment=True
        )
        verify_k_automorphism(result.gk, result.avt)


class TestAlignBlocks:
    def test_replicates_intra_block_patterns(self):
        graph = two_type_graph()
        blocks = [[0, 1, 4], [2, 3, 5]]
        avt, _, padded = build_avt(graph, blocks)
        added = align_blocks(padded, avt)
        # edge (0,1) is intra-block in block 0; its pattern must now
        # exist in block 1 too
        f1 = avt.function(1)
        assert padded.has_edge(f1(0), f1(1))
        for u, v in added:
            assert padded.has_edge(u, v)

    def test_alignment_then_copy_yields_automorphism(self):
        graph = two_type_graph()
        blocks = [[0, 1, 4], [2, 3, 5]]
        avt, _, padded = build_avt(graph, blocks)
        align_blocks(padded, avt)
        copy_crossing_edges(padded, avt)
        f1 = avt.function(1)
        for u, v in padded.edges():
            assert padded.has_edge(f1(u), f1(v))

    def test_idempotent_on_already_aligned_graph(self):
        graph = two_type_graph()
        blocks = [[0, 1, 4], [2, 3, 5]]
        avt, _, padded = build_avt(graph, blocks)
        align_blocks(padded, avt)
        copy_crossing_edges(padded, avt)
        assert align_blocks(padded, avt) == []
        assert copy_crossing_edges(padded, avt) == []
