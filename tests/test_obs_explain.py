"""Per-query EXPLAIN reports (`repro.obs.explain`).

The report is a total derivation over a (possibly stitched) trace:
every field reads named spans of the canonical taxonomy, missing spans
degrade to zeros, and the renderers must always produce output — even
for an untraced run.
"""

import json

import pytest

from repro.core.config import ConfigError, SystemConfig
from repro.core.options import QueryOptions
from repro.core.system import PrivacyPreservingSystem
from repro.graph.generators import example_query, example_social_network
from repro.obs import ExplainReport, Observability, Trace, Tracer, names
from repro.obs.explain import PHASE_SPANS, PhaseTiming, ShardWork


def _stitched_trace() -> Trace:
    """A deterministic two-process serving trace, built like the real
    pipeline: client root -> gateway -> cloud -> two shard lanes."""
    tracer = Tracer(query_id="q-42")
    with tracer.span(names.CLIENT_SUBMIT) as root:
        with tracer.span(names.GATEWAY_REQUEST) as gw:
            gw.set(status="ok")
            with tracer.span(names.GATEWAY_DISPATCH):
                with tracer.span(names.CLOUD_ANSWER) as cloud:
                    cloud.set(rs_size=9, rin_size=4, matches=4, shards=2)
                    with tracer.span(names.CLOUD_DECOMPOSE) as dec:
                        dec.set(stars=3)
                    with tracer.span(names.CLOUD_STAR_MATCHING) as sm:
                        sm.set(cache_hits=1, cache_misses=2)
        with tracer.span(names.NETWORK_GATEWAY_QUERY) as nq:
            nq.set(bytes=120)
        with tracer.span(names.NETWORK_GATEWAY_ANSWER) as na:
            na.set(bytes=340)
        with tracer.span(names.CLIENT_FILTER) as filt:
            filt.set(candidates=4, results=2, dropped=2)
    trace = tracer.take_trace()
    # shard lanes arrive from fork children (other pids), absorbed in
    # arbitrary order — from_trace must sort them by shard index
    for shard, pid, results in ((1, 7002, 3), (0, 7001, 6)):
        child = Tracer(query_id="q-42")
        with child.span(names.CLOUD_SHARD_MATCH) as span:
            span.set(shard=shard, results=results)
        doc = child.take_trace().to_dict()
        for span_doc in doc["spans"]:
            span_doc["pid"] = pid
        trace.merge(
            Trace.from_dict(doc),
            parent_id=trace.first(names.CLOUD_ANSWER).span_id,
        )
    return trace


class TestFromTrace:
    def test_empty_inputs_degrade_to_zeros(self):
        for report in (
            ExplainReport.from_trace(None),
            ExplainReport.from_trace(Trace()),
        ):
            assert report.query_id == ""
            assert report.phases == [] and report.per_shard == []
            assert report.render_text()  # still renders

    def test_derives_plan_sizes_and_status(self):
        report = ExplainReport.from_trace(_stitched_trace())
        assert report.query_id == "q-42"  # inferred from the spans
        assert report.status == "ok"
        assert report.stars == 3
        assert report.shards == 2
        assert report.dispatched is True
        assert report.rs_size == 9 and report.rin_size == 4
        assert report.matches == 4
        assert report.candidates == 4 and report.results == 2
        assert report.cache_hits == 1 and report.cache_misses == 2

    def test_bytes_per_direction(self):
        report = ExplainReport.from_trace(_stitched_trace())
        assert report.bytes_by_direction == {
            "gateway_query": 120,
            "gateway_answer": 340,
        }

    def test_per_shard_lanes_sorted_with_pids(self):
        report = ExplainReport.from_trace(_stitched_trace())
        assert [work.shard for work in report.per_shard] == [0, 1]
        assert [work.results for work in report.per_shard] == [6, 3]
        assert [work.pid for work in report.per_shard] == [7001, 7002]
        assert report.process_count >= 2

    def test_phases_follow_pipeline_order(self):
        report = ExplainReport.from_trace(_stitched_trace())
        rendered = [phase.name for phase in report.phases]
        assert rendered == [
            name for name in PHASE_SPANS if name in rendered
        ]
        assert names.CLIENT_SUBMIT in rendered
        assert names.CLOUD_SHARD_MATCH in rendered
        shard_phase = next(
            phase
            for phase in report.phases
            if phase.name == names.CLOUD_SHARD_MATCH
        )
        assert shard_phase.count == 2

    def test_missing_query_id_falls_back_to_argument(self):
        tracer = Tracer()  # no query id stamped
        with tracer.span(names.QUERY):
            pass
        report = ExplainReport.from_trace(
            tracer.take_trace(), query_id="q-given"
        )
        assert report.query_id == "q-given"

    def test_coalesced_request_has_no_dispatch(self):
        tracer = Tracer(query_id="q-c")
        with tracer.span(names.GATEWAY_REQUEST) as gw:
            gw.set(status="ok")
        report = ExplainReport.from_trace(tracer.take_trace())
        assert report.dispatched is False
        assert "[coalesced]" in report.render_text()


class TestRenderers:
    def test_text_report_names_the_load_bearing_numbers(self):
        text = ExplainReport.from_trace(_stitched_trace()).render_text()
        assert "EXPLAIN query q-42" in text
        assert "status=ok" in text
        assert "3 star(s) over 2 shard(s)" in text
        assert "|RS|=9" in text and "|Rin|=4" in text
        assert "gateway_answer=340" in text and "gateway_query=120" in text
        assert "shard 0: results=6  pid=7001" in text
        assert "shard 1: results=3  pid=7002" in text
        assert "1 hit(s) / 2 miss(es)" in text

    def test_json_round_trips(self):
        report = ExplainReport.from_trace(_stitched_trace())
        restored = ExplainReport.from_dict(json.loads(report.to_json()))
        assert restored == report

    def test_dict_round_trip_rehydrates_nested_types(self):
        report = ExplainReport(
            query_id="q-1",
            phases=[PhaseTiming(name="query", seconds=0.5)],
            per_shard=[ShardWork(shard=0, results=3, seconds=0.1)],
        )
        restored = ExplainReport.from_dict(report.to_dict())
        assert isinstance(restored.phases[0], PhaseTiming)
        assert isinstance(restored.per_shard[0], ShardWork)
        assert restored == report


class TestQueryOptionsSurface:
    def test_explain_requires_trace(self):
        with pytest.raises(ConfigError):
            QueryOptions(trace=False, explain=True)

    def test_outcome_carries_report_when_asked(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2), obs=Observability()
        )
        plain = system.query(example_query())
        assert plain.explain is None
        outcome = system.query(
            example_query(), options=QueryOptions(explain=True)
        )
        report = outcome.explain
        assert report is not None
        assert report.query_id == outcome.query_id
        assert report.results == len(outcome.matches)
        assert report.total_seconds > 0.0
        # the report survives the outcome's own dict round trip
        restored = type(outcome).from_dict(outcome.to_dict())
        assert restored.explain == report
