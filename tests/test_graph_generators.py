"""Unit tests for synthetic graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    cycle_graph,
    example_query,
    example_social_network,
    grid_graph,
    make_schema,
    random_attributed_graph,
    schema_from_graph,
    star_graph,
    validate_graph,
    zipf_weights,
)


class TestZipfWeights:
    def test_weights_normalized(self):
        weights = zipf_weights(10, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = zipf_weights(5, 1.2)
        assert weights == sorted(weights, reverse=True)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestRandomAttributedGraph:
    def test_respects_schema(self):
        schema = make_schema(3, 2, 5)
        graph = random_attributed_graph(schema, 80, seed=1)
        validate_graph(graph, schema)  # raises on violation

    def test_deterministic_for_seed(self):
        schema = make_schema(2, 1, 4)
        a = random_attributed_graph(schema, 50, seed=9)
        b = random_attributed_graph(schema, 50, seed=9)
        assert a.structure_equal(b)

    def test_different_seeds_differ(self):
        schema = make_schema(2, 1, 4)
        a = random_attributed_graph(schema, 50, seed=1)
        b = random_attributed_graph(schema, 50, seed=2)
        assert not a.structure_equal(b)

    def test_connected_by_default(self):
        schema = make_schema(1, 1, 3)
        graph = random_attributed_graph(schema, 200, edges_per_vertex=1, seed=3)
        assert graph.is_connected()

    def test_skewed_labels_are_skewed(self):
        from repro.graph import compute_statistics

        schema = make_schema(1, 1, 10)
        graph = random_attributed_graph(schema, 500, label_skew=1.5, seed=4)
        stats = compute_statistics(graph)
        labels = sorted(schema.labels_of("t0", "t0_a0"))
        f_first = stats.frequency_of_label("t0", "t0_a0", labels[0])
        f_last = stats.frequency_of_label("t0", "t0_a0", labels[-1])
        assert f_first > 3 * f_last

    def test_single_vertex(self):
        schema = make_schema(1, 1, 2)
        graph = random_attributed_graph(schema, 1, seed=0)
        assert graph.vertex_count == 1
        assert graph.edge_count == 0

    def test_invalid_vertex_count(self):
        schema = make_schema(1, 1, 2)
        with pytest.raises(GraphError):
            random_attributed_graph(schema, 0)


class TestRunningExample:
    def test_figure1_shape(self):
        graph, schema = example_social_network()
        assert graph.vertex_count == 8
        assert graph.edge_count == 10
        validate_graph(graph, schema)

    def test_figure1_query_shape(self):
        query = example_query()
        assert query.vertex_count == 5
        assert query.edge_count == 4
        assert query.is_connected()

    def test_query_has_exactly_two_matches(self):
        """The paper states Q has two matches over G (Example 1)."""
        from repro.matching import find_subgraph_matches

        graph, _ = example_social_network()
        matches = find_subgraph_matches(example_query(), graph)
        assert len(matches) == 2


class TestStructuredGenerators:
    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.vertex_count == 12
        assert graph.edge_count == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_cycle(self):
        graph = cycle_graph(5)
        assert graph.edge_count == 5
        assert all(graph.degree(v) == 2 for v in graph.vertex_ids())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(4)
        assert graph.degree(0) == 4
        assert graph.edge_count == 4


class TestSchemaFromGraph:
    def test_covers_observed_labels(self, figure1_graph):
        schema = schema_from_graph(figure1_graph)
        validate_graph(figure1_graph, schema)

    def test_label_free_type_gets_placeholder(self):
        from repro.graph import AttributedGraph

        graph = AttributedGraph()
        graph.add_vertex(0, "bare")
        schema = schema_from_graph(graph)
        assert "bare" in schema
        assert schema.attributes_of("bare")
