"""Unit tests for grouping strategies (RAN, FSIM) and LCT assembly."""

import random

import pytest

from repro.anonymize import (
    STRATEGIES,
    StrategyContext,
    build_lct,
    chunk_permutation,
    frequency_similar_grouping,
    group_sizes,
    random_grouping,
)
from repro.exceptions import AnonymizationError
from repro.graph import compute_statistics, make_schema, random_attributed_graph


class TestGroupSizes:
    def test_exact_division(self):
        assert group_sizes(6, 2) == [2, 2, 2]

    def test_remainder_spread(self):
        assert group_sizes(7, 2) == [3, 2, 2]
        assert group_sizes(8, 3) == [4, 4]  # 8//3=2 groups, remainder 2

    def test_under_theta_single_group(self):
        assert group_sizes(2, 3) == [2]

    def test_every_size_at_least_theta_when_possible(self):
        for n in range(4, 40):
            for theta in (2, 3, 5):
                sizes = group_sizes(n, theta)
                assert sum(sizes) == n
                if n >= theta:
                    assert all(size >= theta for size in sizes)

    def test_empty_universe_rejected(self):
        with pytest.raises(AnonymizationError):
            group_sizes(0, 2)


class TestChunkPermutation:
    def test_chunks_follow_sizes(self):
        groups = chunk_permutation(list("abcdefg"), 2)
        assert [len(g) for g in groups] == [3, 2, 2]
        assert [label for g in groups for label in g] == list("abcdefg")


class TestRandomGrouping:
    def test_partitions_universe(self):
        context = StrategyContext("t", "a", rng=random.Random(1))
        groups = random_grouping(list("abcdef"), 2, context)
        assert sorted(label for g in groups for label in g) == list("abcdef")
        assert all(len(g) >= 2 for g in groups)

    def test_seed_controls_layout(self):
        a = random_grouping(list("abcdef"), 2, StrategyContext("t", "a", rng=random.Random(1)))
        b = random_grouping(list("abcdef"), 2, StrategyContext("t", "a", rng=random.Random(1)))
        assert a == b


class TestFrequencySimilarGrouping:
    def test_groups_adjacent_frequencies(self):
        freq = {"a": 0.4, "b": 0.35, "c": 0.1, "d": 0.08, "e": 0.05, "f": 0.02}
        context = StrategyContext("t", "x", graph_frequency=freq)
        groups = frequency_similar_grouping(sorted(freq), 2, context)
        assert groups[0] == ["a", "b"]  # the two most frequent together
        assert groups[-1] == ["e", "f"]


class TestBuildLct:
    def test_covers_whole_schema(self, small_schema):
        lct = build_lct(small_schema, 2, STRATEGIES["RAN"], seed=3)
        lct.verify(allow_small_groups=True)
        for vertex_type in small_schema.type_names:
            for attr in small_schema.attributes_of(vertex_type):
                for label in small_schema.labels_of(vertex_type, attr):
                    assert lct.group_of(vertex_type, attr, label)

    def test_theta_respected(self, small_schema):
        lct = build_lct(small_schema, 3, STRATEGIES["FSIM"], seed=3)
        lct.verify()  # 6 labels per attribute -> groups of exactly 3

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_all_strategies_produce_valid_lct(self, small_schema, name):
        graph = random_attributed_graph(small_schema, 100, seed=5)
        stats = compute_statistics(graph)
        lct = build_lct(small_schema, 2, STRATEGIES[name], graph_stats=stats, seed=1)
        lct.verify(allow_small_groups=True)

    def test_unobserved_labels_still_grouped(self):
        # schema mentions labels the (empty) graph never uses
        schema = make_schema(1, 1, 6)
        lct = build_lct(schema, 2, STRATEGIES["EFF"], seed=0)
        assert lct.group_count() == 3

    def test_broken_strategy_detected(self, small_schema):
        def drops_labels(labels, theta, context):
            return [list(labels)[:-1]]

        with pytest.raises(AnonymizationError):
            build_lct(small_schema, 2, drops_labels)
