"""Privacy-audit reporter: k / theta guarantees, FP ratio, gauges."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import PrivacyPreservingSystem
from repro.graph.generators import example_query, example_social_network
from repro.obs import MetricsRegistry, Observability, names, prometheus_text
from repro.obs.audit import (
    AUDIT_PREFIX,
    FP_GAUGE_MAX_QUERIES,
    PrivacyAuditReport,
    QueryAuditEntry,
    audit_system,
    build_audit,
    candidate_set_sizes,
    format_audit,
    group_entropy_bits,
    label_group_sizes,
    query_audit_entry,
    register_live_false_positive_ratio,
)
from repro.obs.exporters import PROM_LINE_RE


def _demo_system(k: int = 2) -> PrivacyPreservingSystem:
    graph, schema = example_social_network()
    return PrivacyPreservingSystem.setup(
        graph, schema, SystemConfig(k=k), obs=Observability()
    )


class TestQueryAuditEntry:
    def test_false_positive_arithmetic(self):
        entry = QueryAuditEntry(
            query_id="q-x", candidates=8, results=2, rin_size=4
        )
        assert entry.false_positives == 6
        assert entry.false_positive_ratio == pytest.approx(0.75)

    def test_zero_candidates_give_zero_ratio(self):
        assert QueryAuditEntry().false_positive_ratio == 0.0

    def test_entry_reads_off_a_query_outcome(self):
        system = _demo_system()
        outcome = system.query(example_query())
        entry = query_audit_entry(outcome)
        assert entry.query_id == outcome.query_id
        assert entry.results == len(outcome.matches)
        assert entry.candidates >= entry.results


class TestGuarantees:
    def test_candidate_sets_meet_k_on_demo_deployment(self):
        system = _demo_system(k=2)
        sizes = candidate_set_sizes(system.published.transform.avt)
        assert sizes and min(sizes) >= 2

    def test_label_groups_meet_theta(self):
        system = _demo_system()
        sizes = label_group_sizes(system.published.lct)
        assert sizes and min(sizes) >= system.config.theta

    def test_entropy_is_log2_of_group_size(self):
        assert group_entropy_bits(2) == pytest.approx(1.0)
        assert group_entropy_bits(8) == pytest.approx(3.0)
        assert group_entropy_bits(0) == 0.0

    def test_report_flags_violations(self):
        report = PrivacyAuditReport(
            k=3, theta=2, vertex_count=4, candidate_set_min=2,
            label_group_count=2, label_group_min_size=2,
        )
        assert not report.k_satisfied  # 2 < k=3
        assert report.theta_satisfied
        assert not report.ok
        assert "FAIL" in format_audit(report)

    def test_attack_bound_is_inverse_min_candidate_set(self):
        report = PrivacyAuditReport(k=2, candidate_set_min=4, vertex_count=1)
        assert report.attack_probability_bound == pytest.approx(0.25)
        assert PrivacyAuditReport().attack_probability_bound == 1.0


class TestAuditSystem:
    def test_demo_audit_passes_and_fp_matches_counters(self):
        system = _demo_system()
        outcomes = [system.query(example_query()) for _ in range(2)]
        report = audit_system(system, outcomes=outcomes)
        assert report.ok
        assert report.k == 2 and report.candidate_set_min >= 2
        assert report.theta == 2 and report.label_group_min_size >= 2
        # aggregate Algorithm-3 counts come from the registry counters
        registry = system.obs.metrics
        assert report.candidates_total == registry.counter(
            names.M_CANDIDATES
        ).total
        assert report.matches_total == registry.counter(
            names.M_MATCHES
        ).total
        assert report.false_positives_total == registry.counter(
            names.M_FALSE_POSITIVES
        ).total
        assert report.false_positive_ratio == pytest.approx(
            report.false_positives_total / report.candidates_total
        )
        # ... and line up with the per-query entries
        assert len(report.per_query) == 2
        assert sum(e.candidates for e in report.per_query) == (
            report.candidates_total
        )

    def test_outsourced_fraction_below_one_for_go_deployment(self):
        system = _demo_system()
        report = audit_system(system)
        assert 0.0 < report.outsourced_fraction < 1.0

    def test_bas_deployment_outsources_everything(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, method="BAS")
        )
        report = audit_system(system)
        assert report.outsourced_fraction == pytest.approx(1.0)

    def test_build_audit_without_registry_uses_outcomes(self):
        system = _demo_system()
        outcome = system.query(example_query())
        report = build_audit(
            system.published.transform.avt,
            system.published.lct,
            theta=2,
            outcomes=[outcome],
        )
        entry = query_audit_entry(outcome)
        assert report.candidates_total == entry.candidates
        assert report.matches_total == entry.results

    def test_to_dict_round_trips_through_json(self):
        import json

        report = audit_system(_demo_system())
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is True
        assert doc["k_satisfied"] is True


class TestGauges:
    def test_register_exports_parseable_prometheus_gauges(self):
        system = _demo_system()
        outcomes = [system.query(example_query())]
        report = audit_system(system, outcomes=outcomes)
        registry = MetricsRegistry()
        report.register(registry)
        text = prometheus_text(registry)
        for needle in (
            "repro_privacy_audit_k 2",
            "repro_privacy_audit_candidate_set_min 2",
            "repro_privacy_audit_label_group_min_size 2",
            "repro_privacy_audit_ok 1",
            "repro_privacy_audit_attack_probability_bound 0.5",
            "repro_privacy_audit_query_false_positive_ratio{query_id=",
        ):
            assert needle in text, f"missing: {needle}"
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable: {line!r}"

    def test_fp_gauge_cardinality_is_bounded(self):
        """Only the newest FP_GAUGE_MAX_QUERIES query ids keep a
        labeled series — a long-lived server re-auditing forever must
        not grow /metrics by one line per query id."""
        per_query = [
            QueryAuditEntry(query_id=f"q-{i}", candidates=4, results=2)
            for i in range(FP_GAUGE_MAX_QUERIES + 40)
        ]
        report = PrivacyAuditReport(per_query=per_query)
        registry = MetricsRegistry()
        report.register(registry)
        gauge = registry.gauge(
            f"{AUDIT_PREFIX}_query_false_positive_ratio"
        )
        series = {dict(key)["query_id"] for key, _ in gauge.items()}
        assert len(series) == FP_GAUGE_MAX_QUERIES
        # the newest ids survive, the oldest were never exported
        assert f"q-{FP_GAUGE_MAX_QUERIES + 39}" in series
        assert "q-0" not in series

    def test_fp_gauge_reregister_evicts_stale_series(self):
        registry = MetricsRegistry()
        gauge_name = f"{AUDIT_PREFIX}_query_false_positive_ratio"
        first = PrivacyAuditReport(
            per_query=[QueryAuditEntry(query_id="q-old", candidates=2)]
        )
        first.register(registry)
        assert registry.gauge(gauge_name).present(query_id="q-old")
        fresh = [
            QueryAuditEntry(query_id=f"q-new-{i}", candidates=2)
            for i in range(FP_GAUGE_MAX_QUERIES)
        ]
        PrivacyAuditReport(per_query=fresh).register(registry)
        gauge = registry.gauge(gauge_name)
        assert not gauge.present(query_id="q-old")
        series = {dict(key)["query_id"] for key, _ in gauge.items()}
        assert len(series) == FP_GAUGE_MAX_QUERIES

    def test_fp_gauge_skips_entries_without_query_id(self):
        report = PrivacyAuditReport(
            per_query=[QueryAuditEntry(candidates=4, results=1)]
        )
        registry = MetricsRegistry()
        report.register(registry)
        gauge = registry.gauge(
            f"{AUDIT_PREFIX}_query_false_positive_ratio"
        )
        assert gauge.items() == []

    def test_live_fp_ratio_callback_tracks_counters(self):
        registry = MetricsRegistry()
        register_live_false_positive_ratio(registry)
        values = {n: v for n, v, _ in registry.callbacks()}
        assert values["privacy_audit_false_positive_ratio_live"] == 0.0
        registry.counter(names.M_CANDIDATES).inc(10)
        registry.counter(names.M_FALSE_POSITIVES).inc(4)
        values = {n: v for n, v, _ in registry.callbacks()}
        assert values[
            "privacy_audit_false_positive_ratio_live"
        ] == pytest.approx(0.4)

    def test_query_client_registers_live_ratio(self):
        system = _demo_system()
        system.query(example_query())
        text = prometheus_text(system.obs.metrics)
        assert "repro_privacy_audit_false_positive_ratio_live" in text
