"""Unit tests for the Label Correspondence Table."""

import pytest

from repro.anonymize import LabelCorrespondenceTable
from repro.exceptions import AnonymizationError
from repro.graph import AttributedGraph


@pytest.fixture
def lct() -> LabelCorrespondenceTable:
    table = LabelCorrespondenceTable(theta=2)
    table.add_group("company", "company_type", ["internet", "software"])
    table.add_group("person", "gender", ["male", "female"])
    table.add_group("person", "occupation", ["hr", "accountant"])
    table.add_group("person", "occupation", ["engineer", "manager"])
    return table


class TestConstruction:
    def test_invalid_theta(self):
        with pytest.raises(AnonymizationError):
            LabelCorrespondenceTable(0)

    def test_group_ids_unique_per_attribute(self, lct):
        groups = lct.groups_for("person", "occupation")
        assert len(groups) == 2
        assert len(set(groups)) == 2

    def test_empty_group_rejected(self, lct):
        with pytest.raises(AnonymizationError):
            lct.add_group("person", "gender", [])

    def test_regrouping_same_label_rejected(self, lct):
        with pytest.raises(AnonymizationError):
            lct.add_group("person", "gender", ["male"])

    def test_duplicate_group_id_rejected(self, lct):
        with pytest.raises(AnonymizationError):
            lct.add_group("person", "x", ["a", "b"], gid=lct.group_ids()[0])


class TestLookups:
    def test_group_of(self, lct):
        gid = lct.group_of("person", "gender", "male")
        assert gid == lct.group_of("person", "gender", "female")
        assert sorted(lct.members(gid)) == ["female", "male"]

    def test_same_label_in_different_attributes_is_distinct(self, lct):
        lct.add_group("school", "located_in", ["male", "other"])  # odd but legal
        assert lct.group_of("school", "located_in", "male") != lct.group_of(
            "person", "gender", "male"
        )

    def test_unknown_label_raises(self, lct):
        with pytest.raises(AnonymizationError):
            lct.group_of("person", "gender", "robot")

    def test_unknown_group_raises(self, lct):
        with pytest.raises(AnonymizationError):
            lct.members("nope#0")


class TestApplication:
    def test_generalize_label_map(self, lct):
        generalized = lct.generalize_label_map(
            "person", {"gender": frozenset({"male"}), "occupation": frozenset({"hr"})}
        )
        assert generalized["gender"] == {lct.group_of("person", "gender", "male")}
        assert generalized["occupation"] == {
            lct.group_of("person", "occupation", "hr")
        }

    def test_apply_to_graph_preserves_structure(self, lct):
        graph = AttributedGraph("g")
        graph.add_vertex(0, "person", {"gender": ["male"]})
        graph.add_vertex(1, "person", {"gender": ["female"]})
        graph.add_edge(0, 1)
        anonymized = lct.apply_to_graph(graph)
        assert anonymized.edge_count == 1
        assert anonymized.vertex_count == 2
        # male and female share a group -> identical anonymized labels
        assert anonymized.vertex(0).labels == anonymized.vertex(1).labels

    def test_apply_to_graph_hides_raw_labels(self, lct, figure1_graph):
        anonymized = lct_for_figure1().apply_to_graph(figure1_graph)
        raw_labels = {
            label for data in figure1_graph.vertices() for _, label in data.label_items()
        }
        published = {
            label for data in anonymized.vertices() for _, label in data.label_items()
        }
        assert not raw_labels & published


def lct_for_figure1() -> LabelCorrespondenceTable:
    """The LCT of Figure 2 (groups A-F of the running example)."""
    table = LabelCorrespondenceTable(theta=2)
    table.add_group("company", "company_type", ["internet", "software"])
    table.add_group("company", "state", ["california", "washington"])
    table.add_group("person", "gender", ["female", "male"])
    table.add_group("person", "occupation", ["hr", "accountant"])
    table.add_group("person", "occupation", ["engineer", "manager"])
    table.add_group("school", "located_in", ["illinois", "massachusetts"])
    return table


class TestVerify:
    def test_valid_lct_passes(self, lct):
        lct.verify()

    def test_small_group_detected(self):
        table = LabelCorrespondenceTable(theta=3)
        table.add_group("t", "a", ["x", "y"])
        with pytest.raises(AnonymizationError):
            table.verify()
        table.verify(allow_small_groups=True)  # explicit opt-in


class TestSerialization:
    def test_round_trip(self, lct):
        restored = LabelCorrespondenceTable.from_dict(lct.to_dict())
        assert restored.theta == lct.theta
        assert restored.group_ids() == lct.group_ids()
        for gid in lct.group_ids():
            assert restored.members(gid) == lct.members(gid)
