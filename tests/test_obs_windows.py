"""Sliding-window SLO views: quantiles, rates, registry integration.

The quantile property tests pin the window's inclusive method to the
stdlib's ``statistics.quantiles(..., method="inclusive")`` cut points,
and the fork test proves per-child windows shipped back from the
``process`` backend merge into exactly the window a shared-memory run
would have produced.
"""

import pickle
import random
import statistics

import pytest

from repro.cloud.parallel import fork_available, map_batch
from repro.obs import MetricsRegistry, SlidingWindow, quantile_inclusive
from repro.obs import names, prometheus_text
from repro.obs.exporters import PROM_LINE_RE


class TestQuantileInclusive:
    def test_empty_is_zero(self):
        assert quantile_inclusive([], 0.5) == 0.0

    def test_single_value(self):
        assert quantile_inclusive([3.5], 0.0) == 3.5
        assert quantile_inclusive([3.5], 0.99) == 3.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile_inclusive([1.0], 1.5)

    def test_median_of_even_set_interpolates(self):
        assert quantile_inclusive([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes_are_min_and_max(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert quantile_inclusive(data, 0.0) == 1.0
        assert quantile_inclusive(data, 1.0) == 9.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("size", [2, 5, 17, 100, 257])
    def test_matches_statistics_inclusive_cut_points(self, seed, size):
        # statistics.quantiles(n=N, method="inclusive") returns the
        # cut points at q = i/N for i in 1..N-1 — exactly what
        # quantile_inclusive must reproduce at every of those q.
        rng = random.Random(seed * 1000 + size)
        data = [rng.expovariate(20.0) for _ in range(size)]
        n = 20
        expected = statistics.quantiles(data, n=n, method="inclusive")
        for i, cut in enumerate(expected, start=1):
            assert quantile_inclusive(data, i / n) == pytest.approx(cut)

    def test_unsorted_input_is_sorted_internally(self):
        data = [9.0, 1.0, 5.0]
        assert quantile_inclusive(data, 0.5) == 5.0
        assert data == [9.0, 1.0, 5.0]  # input untouched


class TestSlidingWindow:
    def test_capacity_evicts_oldest(self):
        window = SlidingWindow(capacity=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert window.values() == [2.0, 3.0, 4.0]
        assert len(window) == 3
        assert window.total_observations == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(capacity=0)
        with pytest.raises(ValueError):
            SlidingWindow(window_seconds=-1.0)

    def test_time_bound_prunes_expired(self):
        clock = {"now": 100.0}
        window = SlidingWindow(
            capacity=16, window_seconds=10.0, clock=lambda: clock["now"]
        )
        window.observe(1.0)  # at t=100
        clock["now"] = 105.0
        window.observe(2.0)  # at t=105
        clock["now"] = 112.0  # t=100 entry now older than 10s
        assert window.values() == [2.0]
        assert window.count() == 1
        # rate over the fixed time window: 1 observation / 10 s
        assert window.rate() == pytest.approx(0.1)

    def test_rate_without_time_bound_uses_observed_spread(self):
        clock = {"now": 0.0}
        window = SlidingWindow(capacity=16, clock=lambda: clock["now"])
        assert window.rate() == 0.0  # fewer than 2 observations
        window.observe(1.0)
        clock["now"] = 2.0
        window.observe(1.0)
        assert window.rate() == pytest.approx(2 / 2.0)

    def test_snapshot_views_agree(self):
        window = SlidingWindow(capacity=64)
        values = [float(v) for v in range(1, 11)]
        for value in values:
            window.observe(value)
        snap = window.snapshot()
        assert snap["count"] == 10.0
        assert snap["mean"] == pytest.approx(statistics.mean(values))
        assert snap["p50"] == pytest.approx(statistics.median(values))
        assert snap["p95"] == window.p95()
        assert snap["p99"] == window.p99()

    def test_register_exposes_pull_gauges(self):
        registry = MetricsRegistry()
        window = SlidingWindow(capacity=8)
        window.register(registry, names.W_QUERY_WINDOW, help="query seconds")
        for value in (0.1, 0.2, 0.3):
            window.observe(value)
        snapshot = {name: value for name, value, _ in registry.callbacks()}
        assert snapshot["query_seconds_window_p50"] == pytest.approx(0.2)
        assert snapshot["query_seconds_window_count"] == 3.0
        text = prometheus_text(registry)
        assert "repro_query_seconds_window_p95" in text
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"

    def test_pickle_round_trip_drops_and_recreates_lock(self):
        window = SlidingWindow(capacity=4, window_seconds=60.0)
        window.observe(1.0, now=0.0)
        window.observe(2.0, now=1.0)
        clone = pickle.loads(pickle.dumps(window))
        assert clone.capacity == 4
        assert clone.window_seconds == 60.0
        assert clone.values(now=1.0) == [1.0, 2.0]
        clone.observe(3.0, now=2.0)  # the recreated lock works
        assert clone.total_observations == 3


class TestMerge:
    def test_merge_equals_shared_window(self):
        shared = SlidingWindow(capacity=128)
        left = SlidingWindow(capacity=128)
        right = SlidingWindow(capacity=128)
        rng = random.Random(7)
        for i in range(50):
            ts, value = float(i), rng.random()
            shared.observe(value, now=ts)
            (left if i % 2 == 0 else right).observe(value, now=ts)
        left.merge(right)
        assert left.values() == shared.values()
        assert left.total_observations == shared.total_observations

    def test_merge_keeps_newest_up_to_capacity(self):
        left = SlidingWindow(capacity=3)
        right = SlidingWindow(capacity=3)
        for i in range(3):
            left.observe(float(i), now=float(i))  # t=0,1,2
        for i in range(3, 6):
            right.observe(float(i), now=float(i))  # t=3,4,5
        left.merge(right)
        assert left.values() == [3.0, 4.0, 5.0]
        assert left.total_observations == 6

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_process_children_merge_correctly(self):
        # the process backend pickles per-child windows back to the
        # parent; their merge must equal one window fed all values.
        rng = random.Random(42)
        chunks = [
            [(float(10 * c + i), rng.random()) for i in range(10)]
            for c in range(4)
        ]

        def child(chunk):
            window = SlidingWindow(capacity=256)
            for ts, value in chunk:
                window.observe(value, now=ts)
            return window

        children = map_batch(child, chunks, max_workers=4, backend="process")
        merged = SlidingWindow(capacity=256)
        for window in children:
            merged.merge(window)

        reference = SlidingWindow(capacity=256)
        for chunk in chunks:
            for ts, value in chunk:
                reference.observe(value, now=ts)
        assert merged.values() == reference.values()
        assert merged.total_observations == reference.total_observations
        assert merged.p95() == pytest.approx(reference.p95())
