"""Unit tests for match records and helpers."""

from repro.matching import (
    apply_mapping,
    dedupe_matches,
    is_injective,
    match_key,
    matches_to_rows,
    rows_to_matches,
)


class TestMatchKey:
    def test_key_is_order_insensitive(self):
        assert match_key({1: 10, 0: 20}) == match_key({0: 20, 1: 10})

    def test_key_distinguishes_different_matches(self):
        assert match_key({0: 1}) != match_key({0: 2})


class TestDedupe:
    def test_duplicates_removed_preserving_order(self):
        matches = [{0: 1}, {0: 2}, {0: 1}]
        assert dedupe_matches(matches) == [{0: 1}, {0: 2}]

    def test_empty(self):
        assert dedupe_matches([]) == []


class TestInjectivity:
    def test_injective(self):
        assert is_injective({0: 1, 1: 2})

    def test_not_injective(self):
        assert not is_injective({0: 1, 1: 1})

    def test_empty_is_injective(self):
        assert is_injective({})


class TestApplyMapping:
    def test_applies_to_values_only(self):
        match = {0: 10, 1: 11}
        shifted = apply_mapping(match, lambda v: v + 100)
        assert shifted == {0: 110, 1: 111}
        assert match == {0: 10, 1: 11}  # original untouched


class TestTabularForm:
    def test_round_trip(self):
        matches = [{0: 5, 1: 6}, {0: 7, 1: 8}]
        order = [1, 0]
        rows = matches_to_rows(matches, order)
        assert rows == [[6, 5], [8, 7]]
        assert rows_to_matches(rows, order) == matches
