"""Unit tests for the R6 taint engine (:mod:`repro.analysis.dataflow`).

The fixture-pair tests in ``test_analysis_rules.py`` pin R6's verdict
on realistic code; this suite pins the *semantics* of the propagation
engine itself — source scoping by module, sanitizer clearing,
interprocedural summaries through local helper chains, the gateway's
error-taint scoping — by linting small inline programs under
different ``# lint: module=`` identities.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Finding, LintResult, Severity, get_rule, lint_file

DUMMY = Path("inline_fixture.py")


def r6(source: str, module: str) -> list[Finding]:
    return lint_file(
        DUMMY, rules=[get_rule("R6")], source=source, module=module
    )


# ----------------------------------------------------------------------
# source scoping
# ----------------------------------------------------------------------
LABEL_READ = """\
def ship(owner, channel, obs):
    rows = [vertex.labels for vertex in owner.vertices()]
    channel.transmit("upload", encode_upload(rows), obs=obs)
"""


def test_label_attr_is_a_source_only_in_plaintext_modules():
    # the owner holds plaintext: .labels there is raw label values
    assert r6(LABEL_READ, "repro.core.data_owner")
    # the cloud's .labels reads Go's published group ids: not a source
    assert r6(LABEL_READ, "repro.cloud.engine") == []


def test_token_is_a_source_everywhere():
    source = """\
def audit(client, log):
    log.emit("auth", token=client.token)
"""
    for module in ("repro.cloud.engine", "repro.gateway.server"):
        found = r6(source, module)
        assert len(found) == 1
        assert "a credential" in found[0].message


# ----------------------------------------------------------------------
# sanitizers and neutral calls
# ----------------------------------------------------------------------
def test_sanitizer_call_clears_taint():
    dirty = """\
def publish(lct, gid, channel, obs):
    labels = lct.members(gid)
    channel.transmit("upload", encode_upload(labels), obs=obs)
"""
    clean = """\
def publish(lct, gid, channel, obs):
    labels = lct.members(gid)
    groups = generalize_label_map(labels)
    channel.transmit("upload", encode_upload(groups), obs=obs)
"""
    assert r6(dirty, "repro.core.data_owner")
    assert r6(clean, "repro.core.data_owner") == []


def test_fstring_formatting_does_not_sanitize():
    source = """\
def ship(lct, gid, log):
    log.emit("expansion", detail=f"labels={lct.members(gid)}")
"""
    found = r6(source, "repro.client.expansion")
    assert len(found) == 1
    assert "plaintext label values" in found[0].message


# ----------------------------------------------------------------------
# interprocedural summaries
# ----------------------------------------------------------------------
def test_taint_flows_through_a_two_helper_chain():
    # leak is two call-summaries deep: needs the fixpoint iteration
    source = """\
def inner(value):
    return encode_upload(value)


def outer(value):
    return inner(value)


def entry(lct, gid):
    return outer(lct.members(gid))
"""
    found = r6(source, "repro.core.data_owner")
    assert found, "summary chain lost the taint"
    assert any("via" in f.message for f in found)


def test_helper_returning_its_argument_preserves_taint():
    source = """\
def identity(value):
    return value


def ship(lct, gid, log):
    log.emit("labels", data=identity(lct.members(gid)))
"""
    assert r6(source, "repro.core.data_owner")


# ----------------------------------------------------------------------
# gateway error taint
# ----------------------------------------------------------------------
BROAD_EXCEPT = """\
def guard(request):
    try:
        handle(request)
    except Exception as exc:
        raise ProtocolError(f"failed: {exc}") from exc
"""


def test_broad_except_taints_only_in_gateway_modules():
    found = r6(BROAD_EXCEPT, "repro.gateway.server")
    assert len(found) == 1
    assert "internal exception text" in found[0].message
    # in-process cloud layers share one trust domain: no error taint
    assert r6(BROAD_EXCEPT, "repro.cloud.engine") == []


def test_narrow_except_does_not_taint_in_gateway():
    source = """\
def guard(request):
    try:
        handle(request)
    except KeyError as exc:
        raise ProtocolError(f"missing field: {exc}") from exc
"""
    assert r6(source, "repro.gateway.server") == []


def test_hello_frame_may_carry_the_credential_but_log_may_not():
    source = """\
def connect(conn, log):
    frame = encode_gateway_hello(conn.client_id, conn.token)
    log.emit("hello_sent", frame=frame)
"""
    # allows=("secret",) on the hello codec: the encode is legitimate
    # AND commits the credential to the frame — the frame itself no
    # longer counts as carrying the secret, so logging it is fine.
    assert r6(source, "repro.gateway.client") == []


# ----------------------------------------------------------------------
# severity mechanics (the gate the findings feed)
# ----------------------------------------------------------------------
def test_severity_ranks_order_the_gate():
    assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank
    assert Severity.ERROR.at_least(Severity.WARNING)
    assert not Severity.INFO.at_least(Severity.WARNING)
    assert str(Severity.WARNING) == "warning"


@pytest.mark.parametrize(
    ("severity", "fail_on", "failed"),
    [
        (Severity.INFO, Severity.ERROR, False),
        (Severity.WARNING, Severity.ERROR, False),
        (Severity.ERROR, Severity.ERROR, True),
        (Severity.WARNING, Severity.WARNING, True),
        (Severity.INFO, Severity.INFO, True),
    ],
)
def test_lint_result_failed_respects_threshold(severity, fail_on, failed):
    finding = Finding(
        path="x.py", line=1, col=0, rule="R7", message="m", severity=severity
    )
    result = LintResult(findings=[finding], files_checked=1, rules=["R7"])
    assert result.failed(fail_on) is failed
    # .ok stays an error-only property regardless of the gate
    assert result.ok is (severity is not Severity.ERROR)
