"""Equivalence suite: the sharded cloud is bit-identical to one server.

``ShardedCloud`` partitions ``Go`` over N shard servers (each with its
own halo, VBV/LBV index and star cache) and scatter-gathers every
query.  These tests pin its core contract — for every shard count,
scatter backend and wire mode, :meth:`ShardedCloud.answer` returns
exactly what :meth:`CloudServer.answer` returns: same table schema,
same rows, same row order, same per-star result sizes, same budget
trips.  Structural invariants (halo completeness, center disjointness)
and the aggregate cache/telemetry surfaces are covered alongside.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import CloudServer, ShardedCloud, build_shards, fork_available
from repro.cloud.sharding import halo_vertices, merge_star_tables
from repro.core.config import SystemConfig
from repro.core.protocol import NetworkChannel
from repro.core.system import PrivacyPreservingSystem
from repro.exceptions import ConfigError, ResultBudgetExceeded
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.outsource import build_outsourced_graph
from repro.workloads import random_walk_query

EQUIV = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

PARAMS = dict(
    seed=st.integers(0, 10_000),
    n=st.integers(16, 40),
    k=st.integers(2, 4),
    edges=st.integers(1, 4),
)


def deployment(seed: int, n: int, k: int, edges: int) -> SimpleNamespace:
    """A random outsourced deployment plus a random query over it."""
    schema = make_schema(2, 1, 4)
    graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
    query = random_walk_query(graph, edges, seed=seed + 1)
    transform = build_k_automorphic_graph(graph, k, seed=seed)
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    return SimpleNamespace(
        query=query, avt=transform.avt, outsourced=outsourced
    )


def single_server(dep: SimpleNamespace, **kwargs) -> CloudServer:
    return CloudServer(
        dep.outsourced.graph,
        dep.avt,
        dep.outsourced.block_vertices,
        **kwargs,
    )


def sharded(dep: SimpleNamespace, shards: int, **kwargs) -> ShardedCloud:
    return ShardedCloud(
        dep.outsourced.graph,
        dep.avt,
        dep.outsourced.block_vertices,
        shards=shards,
        **kwargs,
    )


def assert_answers_identical(reference, candidate) -> None:
    """Bitwise answer equality: table, order, and telemetry sizes."""
    assert candidate.table.schema == reference.table.schema
    assert candidate.table.rows == reference.table.rows
    assert candidate.expanded == reference.expanded
    assert (
        candidate.star_stats.result_sizes == reference.star_stats.result_sizes
    )
    assert candidate.join_stats.rin_size == reference.join_stats.rin_size


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @EQUIV
    @given(**PARAMS)
    def test_answer_matches_single_server(self, shards, seed, n, k, edges):
        dep = deployment(seed, n, k, edges)
        reference = single_server(dep).answer(dep.query)
        cloud = sharded(dep, shards, backend="serial")
        assert_answers_identical(reference, cloud.answer(dep.query))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_every_backend_identical(self, backend):
        dep = deployment(7, 40, 2, 3)
        reference = single_server(dep).answer(dep.query)
        with sharded(dep, 4, backend=backend) as cloud:
            assert_answers_identical(reference, cloud.answer(dep.query))

    def test_partition_seed_does_not_change_answers(self):
        dep = deployment(3, 36, 2, 3)
        reference = single_server(dep).answer(dep.query)
        for seed in (0, 1, 99):
            cloud = sharded(dep, 3, partition_seed=seed)
            assert_answers_identical(reference, cloud.answer(dep.query))

    def test_full_join_strategy_identical(self):
        dep = deployment(11, 32, 2, 2)
        reference = single_server(dep, join_strategy="full").answer(dep.query)
        cloud = sharded(dep, 2, join_strategy="full")
        assert_answers_identical(reference, cloud.answer(dep.query))

    def test_query_batch_matches_serial_answers(self):
        dep = deployment(5, 32, 2, 2)
        queries = [dep.query] * 3
        cloud = sharded(dep, 2)
        serial = [cloud.answer(query) for query in queries]
        batched = cloud.query_batch(queries, backend="thread")
        for one, other in zip(serial, batched):
            assert_answers_identical(one, other)


class TestShardStructure:
    def test_halo_gives_every_center_its_full_neighborhood(self):
        dep = deployment(9, 40, 2, 2)
        graph = dep.outsourced.graph
        shards = build_shards(graph, dep.outsourced.block_vertices, 4)
        for shard in shards:
            for center in shard.centers:
                assert shard.graph.neighbors(center) == graph.neighbors(center)

    def test_centers_partition_exactly(self):
        dep = deployment(13, 36, 3, 2)
        centers = dep.outsourced.block_vertices
        shards = build_shards(dep.outsourced.graph, centers, 3)
        seen: list[int] = []
        for shard in shards:
            # shard-local order is the global order, restricted
            assert shard.centers == [
                vid for vid in centers if vid in set(shard.centers)
            ]
            seen.extend(shard.centers)
        assert sorted(seen) == sorted(centers)
        assert len(seen) == len(set(seen))

    def test_halo_vertices_closed_over_neighbors(self):
        dep = deployment(17, 30, 2, 2)
        graph = dep.outsourced.graph
        centers = dep.outsourced.block_vertices[:5]
        halo = halo_vertices(graph, centers)
        for center in centers:
            assert graph.neighbors(center) <= halo

    def test_single_shard_holds_all_centers(self):
        dep = deployment(19, 30, 2, 2)
        shards = build_shards(
            dep.outsourced.graph, dep.outsourced.block_vertices, 1
        )
        assert len(shards) == 1
        assert shards[0].centers == list(dep.outsourced.block_vertices)

    def test_merge_reconstructs_global_order(self):
        from repro.matching import MatchTable
        from repro.matching.star import Star

        star = Star(center=0, leaves=(1,))
        position = {10: 0, 20: 1, 30: 2}
        shard_a = MatchTable((0, 1), [(10, 99), (30, 98)])
        shard_b = MatchTable((0, 1), [(20, 97), (20, 96)])
        merged = merge_star_tables(star, [shard_a, shard_b], position)
        assert merged.rows == [(10, 99), (20, 97), (20, 96), (30, 98)]

    def test_rejects_zero_shards(self):
        dep = deployment(1, 20, 2, 1)
        with pytest.raises(ValueError):
            sharded(dep, 0)
        with pytest.raises(ValueError):
            build_shards(dep.outsourced.graph, dep.outsourced.block_vertices, 0)


class TestBudgetParity:
    @EQUIV
    @given(**PARAMS)
    def test_budget_trips_exactly_when_single_server_trips(
        self, seed, n, k, edges
    ):
        dep = deployment(seed, n, k, edges)
        budget = 5
        reference = single_server(dep, max_intermediate_results=budget)
        cloud = sharded(dep, 2, max_intermediate_results=budget)
        try:
            expected = reference.answer(dep.query)
        except ResultBudgetExceeded:
            with pytest.raises(ResultBudgetExceeded):
                cloud.answer(dep.query)
        else:
            assert_answers_identical(expected, cloud.answer(dep.query))


class TestCacheAndTelemetry:
    def test_cache_counters_aggregate_across_shards(self):
        dep = deployment(23, 36, 2, 3)
        cloud = sharded(dep, 3, star_cache_size=64)
        first = cloud.answer(dep.query)
        hits_after_first, misses_after_first = cloud.star_cache.counters()
        assert misses_after_first > 0
        second = cloud.answer(dep.query)
        hits_after_second, misses_after_second = cloud.star_cache.counters()
        # the repeat resolves entirely from the shard caches
        assert misses_after_second == misses_after_first
        assert hits_after_second > hits_after_first
        assert_answers_identical(first, second)
        assert len(cloud.star_cache) > 0
        assert 0.0 < cloud.star_cache.hit_rate <= 1.0
        cloud.star_cache.clear()
        assert len(cloud.star_cache) == 0

    def test_cached_answers_stay_identical_to_single_server(self):
        dep = deployment(29, 32, 2, 3)
        reference = single_server(dep).answer(dep.query)
        cloud = sharded(dep, 2, star_cache_size=64)
        assert_answers_identical(reference, cloud.answer(dep.query))
        assert_answers_identical(reference, cloud.answer(dep.query))

    def test_accounting_sums_over_shards(self):
        dep = deployment(31, 30, 2, 2)
        with sharded(dep, 3) as cloud:
            assert cloud.index_size_bytes() == sum(
                shard.index_size_bytes() for shard in cloud.shards
            )
            assert cloud.index_build_seconds() > 0.0


class TestShardWire:
    def test_channel_mode_identical_and_byte_accounted(self):
        dep = deployment(37, 36, 2, 3)
        reference = single_server(dep).answer(dep.query)
        channel = NetworkChannel()
        cloud = sharded(dep, 2, backend="serial", channel=channel)
        assert_answers_identical(reference, cloud.answer(dep.query))
        directions = [record.direction for record in channel.transfers]
        shard_count = len(cloud.shards)
        assert directions.count("shard_query") == shard_count
        assert directions.count("shard_answer") == shard_count
        assert channel.total_bytes() > 0


class TestSystemPlumbing:
    def test_system_setup_deploys_sharded_cloud(self):
        schema = make_schema(2, 1, 4)
        graph = random_attributed_graph(schema, 36, edges_per_vertex=2, seed=3)
        queries = [random_walk_query(graph, 2, seed=s) for s in (10, 11)]
        base = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        shard = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, shards=3)
        )
        assert isinstance(shard.cloud, ShardedCloud)
        for query in queries:
            expected = base.query(query)
            got = shard.query(query)
            key = lambda matches: sorted(
                tuple(sorted(m.items())) for m in matches
            )
            assert key(got.matches) == key(expected.matches)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(shards=0)
        with pytest.raises(ConfigError):
            SystemConfig(shards=True)
        with pytest.raises(ConfigError):
            SystemConfig(shard_backend="gpu")
        assert SystemConfig(shards=4, shard_backend="process").shards == 4

    def test_config_backends_stay_in_sync_with_parallel(self):
        from repro.cloud.parallel import BACKENDS

        # config validates against a literal tuple to avoid importing
        # the cloud package; this pin keeps the two lists in lockstep.
        for backend in BACKENDS:
            assert SystemConfig(shard_backend=backend)


class TestDeltaParity:
    def test_apply_delta_rebuilds_shards(self):
        from repro.anonymize import (
            anonymize_query,
            build_lct,
            cost_based_grouping,
        )
        from repro.graph import compute_statistics, example_social_network
        from repro.kauto.dynamic import DynamicRelease

        graph, schema = example_social_network()
        lct = build_lct(
            schema,
            2,
            cost_based_grouping,
            graph_stats=compute_statistics(graph),
            seed=2,
        )
        transform = build_k_automorphic_graph(
            lct.apply_to_graph(graph), 2, seed=1
        )
        release = DynamicRelease(graph.copy(), transform, lct)
        outsourced = release.refresh_outsourced()
        reference = CloudServer(
            outsourced.graph.copy(),
            release.avt,
            list(outsourced.block_vertices),
        )
        cloud = ShardedCloud(
            outsourced.graph.copy(),
            release.avt,
            list(outsourced.block_vertices),
            shards=2,
        )
        delta = release.go_delta(release.insert_edge(0, 5))
        reference.apply_delta(delta)
        cloud.apply_delta(delta)
        query = random_walk_query(graph, 2, seed=5)
        anonymized = anonymize_query(query, release.lct)
        assert_answers_identical(
            reference.answer(anonymized), cloud.answer(anonymized)
        )


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
class TestPersistentScatterPool:
    """The process backend's warm fork pool: reuse, staleness, teardown."""

    def test_pool_forked_once_and_reused(self):
        dep = deployment(7, 40, 2, 3)
        reference = single_server(dep).answer(dep.query)
        with sharded(dep, 4, backend="process") as cloud:
            assert cloud._scatter_pool is None  # forked lazily
            assert_answers_identical(reference, cloud.answer(dep.query))
            pool = cloud._scatter_pool
            assert pool is not None and not pool.closed
            assert_answers_identical(reference, cloud.answer(dep.query))
            assert cloud._scatter_pool is pool
        assert pool.closed

    def test_serial_and_thread_backends_never_fork(self):
        dep = deployment(7, 32, 2, 2)
        for backend in ("serial", "thread"):
            with sharded(dep, 2, backend=backend) as cloud:
                cloud.answer(dep.query)
                assert cloud._scatter_pool is None

    def test_apply_delta_replaces_stale_pool(self):
        from repro.anonymize import (
            anonymize_query,
            build_lct,
            cost_based_grouping,
        )
        from repro.graph import compute_statistics, example_social_network
        from repro.kauto.dynamic import DynamicRelease

        graph, schema = example_social_network()
        lct = build_lct(
            schema,
            2,
            cost_based_grouping,
            graph_stats=compute_statistics(graph),
            seed=2,
        )
        transform = build_k_automorphic_graph(
            lct.apply_to_graph(graph), 2, seed=1
        )
        release = DynamicRelease(graph.copy(), transform, lct)
        outsourced = release.refresh_outsourced()
        reference = CloudServer(
            outsourced.graph.copy(),
            release.avt,
            list(outsourced.block_vertices),
        )
        query = anonymize_query(
            random_walk_query(graph, 2, seed=5), release.lct
        )
        with ShardedCloud(
            outsourced.graph.copy(),
            release.avt,
            list(outsourced.block_vertices),
            shards=2,
            backend="process",
        ) as cloud:
            assert_answers_identical(
                reference.answer(query), cloud.answer(query)
            )
            stale = cloud._scatter_pool
            delta = release.go_delta(release.insert_edge(0, 5))
            reference.apply_delta(delta)
            cloud.apply_delta(delta)
            # the pre-delta children hold the old graph copy-on-write;
            # the pool must be drained and re-forked on the next answer
            assert stale is None or stale.closed
            assert cloud._scatter_pool is None
            assert_answers_identical(
                reference.answer(query), cloud.answer(query)
            )
