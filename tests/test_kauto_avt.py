"""Unit tests for the Alignment Vertex Table and automorphic functions."""

import pytest

from repro.exceptions import VerificationError
from repro.kauto import AlignmentVertexTable


@pytest.fixture
def avt3() -> AlignmentVertexTable:
    """Two rows, k=3: rows (0,1,2) and (10,11,12)."""
    return AlignmentVertexTable([[0, 1, 2], [10, 11, 12]])


class TestConstruction:
    def test_shape(self, avt3):
        assert avt3.k == 3
        assert avt3.row_count == 2
        assert avt3.block(0) == [0, 10]
        assert avt3.block(2) == [2, 12]
        assert avt3.first_block() == [0, 10]

    def test_ragged_rows_rejected(self):
        with pytest.raises(VerificationError):
            AlignmentVertexTable([[0, 1], [2]])

    def test_duplicate_vertex_rejected(self):
        with pytest.raises(VerificationError):
            AlignmentVertexTable([[0, 1], [1, 2]])

    def test_empty_table_rejected(self):
        with pytest.raises(VerificationError):
            AlignmentVertexTable([])

    def test_block_index_out_of_range(self, avt3):
        with pytest.raises(VerificationError):
            avt3.block(3)


class TestAutomorphicFunctions:
    def test_f0_is_identity(self, avt3):
        for vid in avt3.vertex_ids():
            assert avt3.apply(vid, 0) == vid

    def test_f_shifts_blocks_circularly(self, avt3):
        assert avt3.apply(0, 1) == 1
        assert avt3.apply(2, 1) == 0  # wraps around
        assert avt3.apply(10, 2) == 12

    def test_fk_is_identity(self, avt3):
        for vid in avt3.vertex_ids():
            assert avt3.apply(vid, 3) == vid

    def test_fm_equals_f1_iterated(self, avt3):
        f1 = avt3.function(1)
        for vid in avt3.vertex_ids():
            assert avt3.apply(vid, 2) == f1(f1(vid))

    def test_no_fixed_points_for_nonzero_m(self, avt3):
        for m in (1, 2):
            for vid in avt3.vertex_ids():
                assert avt3.apply(vid, m) != vid

    def test_unknown_vertex_raises(self, avt3):
        with pytest.raises(VerificationError):
            avt3.apply(999, 1)

    def test_symmetric_group(self, avt3):
        assert avt3.symmetric_group(11) == (10, 11, 12)

    def test_to_block_anchor(self, avt3):
        m, anchor = avt3.to_block_anchor(12)
        assert anchor == 10
        assert avt3.apply(anchor, m) == 12


class TestMatchMapping:
    def test_apply_to_match(self, avt3):
        match = {0: 0, 1: 11}
        assert avt3.apply_to_match(match, 1) == {0: 1, 1: 12}

    def test_expand_matches_covers_all_shifts(self, avt3):
        expanded = avt3.expand_matches([{0: 0}])
        assert {m[0] for m in expanded} == {0, 1, 2}
        assert len(expanded) == 3


class TestSerialization:
    def test_round_trip(self, avt3):
        restored = AlignmentVertexTable.from_dict(avt3.to_dict())
        assert restored.k == avt3.k
        assert list(restored.rows()) == list(avt3.rows())

    def test_k_mismatch_rejected(self, avt3):
        data = avt3.to_dict()
        data["k"] = 5
        with pytest.raises(VerificationError):
            AlignmentVertexTable.from_dict(data)
