"""Integration tests for the end-to-end system facade."""

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.core import METHOD_NAMES
from repro.exceptions import QueryError
from repro.graph import example_query, example_social_network
from repro.matching import find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset


def oracle_keys(query, graph):
    return {match_key(m) for m in find_subgraph_matches(query, graph)}


class TestExactnessOnRunningExample:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    @pytest.mark.parametrize("k", [2, 3])
    def test_all_methods_exact(self, method, k):
        graph, schema = example_social_network()
        query = example_query()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=k, method=MethodConfig.from_name(method))
        )
        outcome = system.query(query)
        assert {match_key(m) for m in outcome.matches} == oracle_keys(query, graph)

    def test_cloud_side_expansion_is_equivalent(self):
        graph, schema = example_social_network()
        query = example_query()
        base = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        cloudside = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, expansion_site="cloud")
        )
        a = base.query(query)
        b = cloudside.query(query)
        assert {match_key(m) for m in a.matches} == {
            match_key(m) for m in b.matches
        }
        # cloud-side expansion ships more data but needs no client expansion
        assert b.metrics.answer_bytes >= a.metrics.answer_bytes
        assert b.metrics.expansion_seconds == 0.0


class TestExactnessOnDatasets:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_dataset_workload(self, method):
        dataset = load_dataset("DBpedia", scale=0.12)
        workload = generate_workload(dataset.graph, 4, 4, seed=2)
        system = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(k=2, method=MethodConfig.from_name(method)),
            sample_workload=workload,
        )
        for query in workload:
            outcome = system.query(query)
            assert {match_key(m) for m in outcome.matches} == oracle_keys(
                query, dataset.graph
            )
            assert outcome.matches, "random-walk query must match its own source"


class TestMetrics:
    @pytest.fixture(scope="class")
    def system_and_outcome(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        return system, system.query(example_query())

    def test_publish_metrics_populated(self, system_and_outcome):
        system, _ = system_and_outcome
        pm = system.publish_metrics
        assert pm.method == "EFF"
        assert pm.k == 2
        assert pm.gk_edges >= pm.original_edges
        assert pm.uploaded_edges <= pm.gk_edges
        assert pm.upload_bytes > 0
        assert pm.index_bytes > 0
        assert pm.noise_edges == pm.gk_edges - pm.original_edges

    def test_query_metrics_populated(self, system_and_outcome):
        _, outcome = system_and_outcome
        qm = outcome.metrics
        assert qm.query_edges == 4
        assert qm.rin_size >= qm.result_count
        assert qm.candidate_count >= qm.rin_size
        assert qm.answer_bytes > 0
        assert qm.total_seconds == pytest.approx(
            qm.cloud_seconds + qm.network_seconds + qm.client_seconds
        )

    def test_channel_accumulates(self, system_and_outcome):
        system, _ = system_and_outcome
        assert system.channel.total_bytes("upload") > 0
        assert system.channel.total_bytes("query") > 0
        assert system.channel.total_bytes("answer") > 0


class TestQueryValidation:
    def test_disconnected_query_rejected(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        from repro.graph import AttributedGraph

        bad = AttributedGraph()
        bad.add_vertex(0, "person")
        bad.add_vertex(1, "person")
        with pytest.raises(QueryError):
            system.query(bad)

    def test_unknown_query_label_rejected(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        from repro.graph import AttributedGraph

        bad = AttributedGraph()
        bad.add_vertex(0, "person", {"gender": ["alien"]})
        with pytest.raises(Exception):
            system.query(bad)


class TestBehavioralShapes:
    def test_bas_uploads_more_than_eff(self):
        """|E(Gk)| > |E(Go)| and the upload bytes reflect it (Figure 12)."""
        dataset = load_dataset("Web-NotreDame", scale=0.1)
        eff = PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=3)
        )
        bas = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(k=3, method=MethodConfig.from_name("BAS")),
        )
        assert bas.publish_metrics.uploaded_edges > eff.publish_metrics.uploaded_edges
        assert bas.publish_metrics.upload_bytes > eff.publish_metrics.upload_bytes

    def test_index_shrinks_as_k_grows(self):
        """Figure 13: larger k -> smaller B1 -> smaller index."""
        dataset = load_dataset("Web-NotreDame", scale=0.1)
        sizes = []
        for k in (2, 4):
            system = PrivacyPreservingSystem.setup(
                dataset.graph, dataset.schema, SystemConfig(k=k)
            )
            sizes.append(system.publish_metrics.index_bytes)
        assert sizes[1] < sizes[0]
