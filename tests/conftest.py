"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import (
    AttributedGraph,
    GraphSchema,
    example_query,
    example_social_network,
    make_schema,
    random_attributed_graph,
)


@pytest.fixture
def figure1() -> tuple[AttributedGraph, GraphSchema]:
    """The paper's running example: graph + schema of Figure 1."""
    return example_social_network()


@pytest.fixture
def figure1_graph(figure1) -> AttributedGraph:
    return figure1[0]


@pytest.fixture
def figure1_schema(figure1) -> GraphSchema:
    return figure1[1]


@pytest.fixture
def figure1_query() -> AttributedGraph:
    return example_query()


@pytest.fixture
def small_schema() -> GraphSchema:
    """3 types x 2 attributes x 6 labels."""
    return make_schema(3, 2, 6)


@pytest.fixture
def small_graph(small_schema) -> AttributedGraph:
    """A ~120-vertex connected random attributed graph."""
    return random_attributed_graph(small_schema, 120, edges_per_vertex=2, seed=11)


@pytest.fixture
def medium_graph(small_schema) -> AttributedGraph:
    """A ~400-vertex graph for heavier integration tests."""
    return random_attributed_graph(small_schema, 400, edges_per_vertex=3, seed=23)


@pytest.fixture
def figure1_pipeline(figure1):
    """Published artifacts of the running example (EFF-style, k=2).

    Returns a namespace with: graph, schema, query, lct, qo, transform
    (Gk + AVT), outsourced (Go), and the oracle result set.
    """
    from types import SimpleNamespace

    from repro.anonymize import (
        anonymize_query,
        build_lct,
        cost_based_grouping,
        star_workload_statistics,
    )
    from repro.graph import compute_statistics, example_query
    from repro.kauto import build_k_automorphic_graph
    from repro.matching import find_subgraph_matches, match_key
    from repro.outsource import build_outsourced_graph

    graph, schema = figure1
    query = example_query()
    lct = build_lct(
        schema,
        2,
        cost_based_grouping,
        graph_stats=compute_statistics(graph),
        workload_stats=star_workload_statistics([query]),
        seed=5,
    )
    generalized = lct.apply_to_graph(graph)
    transform = build_k_automorphic_graph(generalized, 2, seed=1)
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    return SimpleNamespace(
        graph=graph,
        schema=schema,
        query=query,
        lct=lct,
        qo=anonymize_query(query, lct),
        transform=transform,
        outsourced=outsourced,
        oracle={match_key(m) for m in find_subgraph_matches(query, graph)},
    )


def triangle_graph() -> AttributedGraph:
    graph = AttributedGraph("triangle")
    for vid in range(3):
        graph.add_vertex(vid, "t0")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


@pytest.fixture
def triangle() -> AttributedGraph:
    return triangle_graph()
