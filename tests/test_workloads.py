"""Unit tests for dataset analogues and query generation."""

import pytest

from repro.exceptions import QueryError
from repro.graph import compute_statistics, validate_graph
from repro.matching import has_subgraph_match
from repro.workloads import (
    DATASETS,
    generate_workload,
    load_dataset,
    random_walk_query,
)


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_all_datasets_generate(self, name):
        dataset = load_dataset(name, scale=0.05)
        assert dataset.graph.vertex_count > 0
        assert dataset.graph.edge_count > 0
        validate_graph(dataset.graph, dataset.schema)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_scale_controls_size(self):
        small = load_dataset("DBpedia", scale=0.05)
        big = load_dataset("DBpedia", scale=0.2)
        assert big.graph.vertex_count > small.graph.vertex_count

    def test_schema_shapes_match_paper_proportions(self):
        web = load_dataset("Web-NotreDame", scale=0.05)
        dbp = load_dataset("DBpedia", scale=0.05)
        uk = load_dataset("UK-2002", scale=0.05)
        # type multiplicity ordering from Table 2: 1 < 86 < 2500
        assert len(web.schema) < len(dbp.schema) < len(uk.schema)
        # label multiplicity ordering: 200 < 6300 < 20000 (scaled)
        assert web.schema.label_count() == 200

    def test_labels_are_zipfian(self):
        dataset = load_dataset("Web-NotreDame", scale=0.3)
        stats = compute_statistics(dataset.graph)
        freqs = sorted(
            (
                stats.frequency_of_label("page0", attr, label)
                for (t, attr, label) in stats.label_counts
            ),
            reverse=True,
        )
        # head label much more frequent than the tail
        assert freqs[0] > 5 * freqs[len(freqs) // 2]


class TestRandomWalkQueries:
    def test_query_has_requested_edges_and_is_connected(self, small_graph):
        for n in (1, 3, 6):
            query = random_walk_query(small_graph, n, seed=n)
            assert query.edge_count == n
            assert query.is_connected()

    def test_query_matches_its_source(self, small_graph):
        """A query extracted from G always has >= 1 match in G."""
        for seed in range(5):
            query = random_walk_query(small_graph, 4, seed=seed)
            assert has_subgraph_match(query, small_graph)

    def test_vertices_renumbered_from_zero(self, small_graph):
        query = random_walk_query(small_graph, 5, seed=1)
        assert sorted(query.vertex_ids()) == list(range(query.vertex_count))

    def test_label_dropping(self, small_graph):
        full = random_walk_query(small_graph, 4, seed=7, keep_label_probability=1.0)
        bare = random_walk_query(small_graph, 4, seed=7, keep_label_probability=0.0)
        full_labels = sum(len(d.labels) for d in full.vertices())
        bare_labels = sum(len(d.labels) for d in bare.vertices())
        assert bare_labels == 0
        assert full_labels > 0

    def test_deterministic_per_seed(self, small_graph):
        a = random_walk_query(small_graph, 4, seed=3)
        b = random_walk_query(small_graph, 4, seed=3)
        assert a.structure_equal(b)

    def test_invalid_edge_count(self, small_graph):
        with pytest.raises(QueryError):
            random_walk_query(small_graph, 0)

    def test_empty_graph_rejected(self):
        from repro.graph import AttributedGraph

        with pytest.raises(QueryError):
            random_walk_query(AttributedGraph(), 2)

    def test_impossible_size_raises(self):
        from repro.graph import AttributedGraph

        tiny = AttributedGraph()
        tiny.add_vertex(0, "t")
        tiny.add_vertex(1, "t")
        tiny.add_edge(0, 1)
        with pytest.raises(QueryError):
            random_walk_query(tiny, 5)


class TestWorkloadBatch:
    def test_batch_size_and_diversity(self, small_graph):
        workload = generate_workload(small_graph, 3, 10, seed=1)
        assert len(workload) == 10
        assert all(q.edge_count == 3 for q in workload)
        # not all ten queries should be structurally identical
        signatures = {tuple(sorted(q.edges())) for q in workload}
        assert len(signatures) > 1
