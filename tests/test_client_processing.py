"""Unit tests for client-side processing (Algorithm 3)."""

import pytest

from repro.client import ClientFilter, expand_rin, filter_candidates
from repro.kauto import AlignmentVertexTable


class TestExpandRin:
    def test_expansion_size(self, figure1_pipeline):
        pipe = figure1_pipeline
        avt = pipe.transform.avt
        anchor = avt.first_block()[0]
        result = expand_rin([{0: anchor}], avt)
        assert len(result.matches) == avt.k
        assert result.rin_size == 1
        assert result.rout_size == avt.k - 1

    def test_deduplicates(self):
        avt = AlignmentVertexTable([[0, 1]])
        # both matches map to each other under F1 -> expansion collapses
        result = expand_rin([{5: 0}, {5: 1}], avt)
        assert len(result.matches) == 2

    def test_empty_rin(self, figure1_pipeline):
        result = expand_rin([], figure1_pipeline.transform.avt)
        assert result.matches == []
        assert result.rout_size == 0


class TestFiltering:
    def test_noise_vertex_dropped(self, figure1_pipeline):
        pipe = figure1_pipeline
        # any id outside V(G) behaves like a noise vertex to the filter
        noise_id = max(pipe.graph.vertex_ids()) + 1
        fake = {q: noise_id + i for i, q in enumerate(pipe.query.vertex_ids())}
        result = filter_candidates([fake], pipe.graph, pipe.query)
        assert result.matches == []
        assert result.dropped_vertex == 1

    def test_real_noise_vertices_dropped(self, figure1_graph):
        """With k=3 the 8-vertex example needs padding; padded matches
        must be filtered out."""
        from repro.kauto import build_k_automorphic_graph

        transform = build_k_automorphic_graph(figure1_graph, 3, seed=1)
        assert transform.noise_vertex_ids, "k=3 on 8 vertices must pad"
        noise_id = transform.noise_vertex_ids[0]
        from repro.graph import AttributedGraph

        query = AttributedGraph()
        query.add_vertex(0, transform.gk.vertex(noise_id).vertex_type)
        result = filter_candidates([{0: noise_id}], figure1_graph, query)
        assert result.matches == []
        assert result.dropped_vertex == 1

    def test_noise_edge_dropped(self, figure1_pipeline):
        pipe = figure1_pipeline
        # build a candidate that uses only real vertices but a noise edge:
        # map query edge (0,1) onto a Gk edge absent from G
        noise_edges = [
            (u, v)
            for u, v in pipe.transform.gk.edges()
            if u in pipe.graph and v in pipe.graph and not pipe.graph.has_edge(u, v)
        ]
        if not noise_edges:
            pytest.skip("transform added no intra-original noise edges")
        u, v = noise_edges[0]
        from repro.graph import AttributedGraph

        query = AttributedGraph()
        query.add_vertex(0, pipe.graph.vertex(u).vertex_type)
        query.add_vertex(1, pipe.graph.vertex(v).vertex_type)
        query.add_edge(0, 1)
        result = filter_candidates([{0: u, 1: v}], pipe.graph, query)
        assert result.matches == []
        assert result.dropped_edge == 1

    def test_generalized_label_false_positive_dropped(self, figure1_pipeline):
        pipe = figure1_pipeline
        # q0 wants an internet company; c2 (vertex 5) is software — the
        # label groups agree but the raw labels do not.
        candidate = {0: 5, 1: 2, 2: 6, 3: 4, 4: 0}
        result = filter_candidates([candidate], pipe.graph, pipe.query)
        assert result.matches == []
        assert result.dropped_label == 1

    def test_true_match_kept(self, figure1_pipeline):
        pipe = figure1_pipeline
        true_match = {0: 4, 1: 0, 2: 6, 3: 5, 4: 2}
        result = filter_candidates([true_match], pipe.graph, pipe.query)
        assert result.matches == [true_match]
        assert result.dropped == 0

    def test_counters_add_up(self, figure1_pipeline):
        pipe = figure1_pipeline
        noise_id = max(pipe.graph.vertex_ids()) + 1
        candidates = [
            {0: 4, 1: 0, 2: 6, 3: 5, 4: 2},  # true
            {0: 5, 1: 2, 2: 6, 3: 4, 4: 0},  # label false positive
            {q: noise_id + i for i, q in enumerate(pipe.query.vertex_ids())},
        ]
        result = ClientFilter(pipe.graph, pipe.query).filter(candidates)
        assert result.candidates == 3
        assert len(result.matches) + result.dropped == 3


class TestEndToEndClientStage:
    def test_filter_after_expansion_recovers_oracle(self, figure1_pipeline):
        """Full candidate set filtered against G gives exactly R(Q, G)."""
        from repro.matching import find_subgraph_matches, match_key

        pipe = figure1_pipeline
        candidates = find_subgraph_matches(pipe.qo, pipe.transform.gk)
        result = filter_candidates(candidates, pipe.graph, pipe.query)
        assert {match_key(m) for m in result.matches} == pipe.oracle
