"""Tests for incremental maintenance of a k-automorphic release."""

import pytest

from repro.anonymize import build_lct, cost_based_grouping
from repro.exceptions import GraphError
from repro.graph import assert_supergraph, compute_statistics
from repro.kauto import build_k_automorphic_graph, verify_k_automorphism
from repro.kauto.dynamic import DynamicRelease
from repro.matching import find_subgraph_matches, match_key


@pytest.fixture
def release(figure1):
    graph, schema = figure1
    lct = build_lct(
        schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph), seed=3
    )
    generalized = lct.apply_to_graph(graph)
    transform = build_k_automorphic_graph(generalized, 2, seed=1)
    # DynamicRelease mutates `original`; hand it a private copy
    return DynamicRelease(graph.copy(), transform, lct), schema


def pipeline_exact(release, query, original):
    """Run the full pipeline on the current release state."""
    from repro.anonymize import anonymize_query
    from repro.client import expand_rin, filter_candidates
    from repro.cloud import CloudServer

    outsourced = release.refresh_outsourced()
    cloud = CloudServer(outsourced.graph, release.avt, outsourced.block_vertices)
    answer = cloud.answer(anonymize_query(query, release.lct))
    expanded = expand_rin(answer.matches, release.avt)
    got = {
        match_key(m)
        for m in filter_candidates(expanded.matches, original, query).matches
    }
    oracle = {match_key(m) for m in find_subgraph_matches(query, original)}
    return got == oracle


class TestEdgeInsertion:
    def test_orbit_added_and_invariant_holds(self, release):
        dynamic, _ = release
        log = dynamic.insert_edge(0, 3)  # p1 - p4, not in Figure 1
        assert dynamic.original.has_edge(0, 3)
        assert dynamic.gk.has_edge(0, 3)
        assert len(log.added_edges) >= 1
        verify_k_automorphism(dynamic.gk, dynamic.avt)
        assert_supergraph(dynamic.original, dynamic.gk)

    def test_insert_missing_vertex_rejected(self, release):
        dynamic, _ = release
        with pytest.raises(GraphError):
            dynamic.insert_edge(0, 999)

    def test_insert_existing_edge_is_idempotent_on_gk(self, release):
        dynamic, _ = release
        before = dynamic.gk.edge_count
        log = dynamic.insert_edge(0, 4)  # already an edge of G (p1-c1)
        assert dynamic.gk.edge_count == before
        assert log.added_edges == []


class TestEdgeDeletion:
    def test_unpinned_orbit_removed(self, release):
        dynamic, _ = release
        dynamic.insert_edge(0, 3)
        before = dynamic.gk.edge_count
        log = dynamic.delete_edge(0, 3)
        assert not dynamic.original.has_edge(0, 3)
        verify_k_automorphism(dynamic.gk, dynamic.avt)
        assert_supergraph(dynamic.original, dynamic.gk)
        assert dynamic.gk.edge_count <= before
        assert log.removed_edges or dynamic.noise_edge_count() >= 0

    def test_pinned_orbit_stays_as_noise(self, release):
        dynamic, _ = release
        # find an original edge whose orbit contains another original edge
        pinned = None
        for u, v in list(dynamic.original.edges()):
            orbit = dynamic._edge_orbit(u, v)
            others = [
                e for e in orbit if e != (min(u, v), max(u, v))
                and dynamic.original.has_edge(*e)
            ]
            if others:
                pinned = (u, v)
                break
        if pinned is None:
            pytest.skip("this release has no pinned orbit")
        before = dynamic.gk.edge_count
        log = dynamic.delete_edge(*pinned)
        assert log.removed_edges == []
        assert dynamic.gk.edge_count == before  # edge became noise
        verify_k_automorphism(dynamic.gk, dynamic.avt)

    def test_delete_missing_edge_rejected(self, release):
        dynamic, _ = release
        with pytest.raises(GraphError):
            dynamic.delete_edge(0, 3)


class TestVertexInsertion:
    def test_new_row_with_twins(self, release):
        dynamic, _ = release
        before_rows = dynamic.avt.row_count
        log = dynamic.insert_vertex(100, "person", {"gender": ["male"]})
        assert dynamic.avt.row_count == before_rows + 1
        assert len(log.added_vertices) == dynamic.k
        verify_k_automorphism(dynamic.gk, dynamic.avt)
        # new vertex carries generalized (group) labels in Gk
        gk_labels = dynamic.gk.vertex(100).labels
        assert gk_labels != dynamic.original.vertex(100).labels

    def test_duplicate_vertex_rejected(self, release):
        dynamic, _ = release
        with pytest.raises(GraphError):
            dynamic.insert_vertex(0, "person")

    def test_connect_new_vertex(self, release):
        dynamic, _ = release
        dynamic.insert_vertex(100, "person", {"gender": ["female"]})
        dynamic.insert_edge(100, 0)
        verify_k_automorphism(dynamic.gk, dynamic.avt)
        assert dynamic.gk.has_edge(100, 0)


class TestPipelineExactnessAfterUpdates:
    def test_query_after_mixed_updates(self, release, figure1_query):
        dynamic, _ = release
        dynamic.insert_edge(0, 3)
        dynamic.insert_vertex(100, "person", {"gender": ["male"], "occupation": ["engineer"]})
        dynamic.insert_edge(100, 4)   # new person works at c1
        dynamic.insert_edge(100, 6)   # graduated from s1
        dynamic.delete_edge(0, 3)
        assert pipeline_exact(dynamic, figure1_query, dynamic.original)

    def test_new_vertex_appears_in_results(self, release):
        """After inserting a matching person, the query finds them."""
        from repro.graph import AttributedGraph

        dynamic, _ = release
        dynamic.insert_vertex(100, "person", {"occupation": ["engineer"]})
        dynamic.insert_edge(100, 4)
        query = AttributedGraph("q")
        query.add_vertex(0, "person", {"occupation": ["engineer"]})
        query.add_vertex(1, "company", {"company_type": ["internet"]})
        query.add_edge(0, 1)
        assert pipeline_exact(dynamic, query, dynamic.original)
        matches = find_subgraph_matches(query, dynamic.original)
        assert any(m[0] == 100 for m in matches)
