"""The renamed API surface: old names work, warn exactly once per use.

The redesign renamed ``CloudAnswer.total_seconds`` ->
``cloud_seconds`` and ``ClientOutcome.seconds`` -> ``client_seconds``
(so every timing says *whose* seconds it is).  PR-1 callers must keep
working for one release — each deprecated access emits exactly one
``DeprecationWarning`` pointing at the new name, and the new names are
silent (CI runs the suite with ``-W error::DeprecationWarning``).
"""

import warnings

import pytest

from repro.cloud.result_join import JoinStats
from repro.cloud.server import CloudAnswer
from repro.cloud.star_matching import StarMatchStats
from repro.core.query_client import ClientOutcome
from repro.matching.star import Decomposition


def _answer(**kwargs) -> CloudAnswer:
    return CloudAnswer(
        matches=[],
        expanded=False,
        decomposition=Decomposition(stars=[]),
        decomposition_seconds=0.0,
        star_stats=StarMatchStats(),
        join_stats=JoinStats(),
        **kwargs,
    )


def _one_warning(record) -> DeprecationWarning:
    assert len(record) == 1, [str(w.message) for w in record]
    return record[0]


class TestCloudAnswerRename:
    def test_total_seconds_property_warns_once_and_aliases(self):
        answer = _answer(cloud_seconds=1.5)
        with pytest.warns(DeprecationWarning, match="cloud_seconds") as record:
            value = answer.total_seconds
        _one_warning(record)
        assert value == 1.5

    def test_total_seconds_kwarg_warns_once_and_maps(self):
        with pytest.warns(DeprecationWarning, match="cloud_seconds") as record:
            answer = _answer(total_seconds=2.5)
        _one_warning(record)
        assert answer.cloud_seconds == 2.5

    def test_new_kwarg_wins_over_deprecated_one(self):
        with pytest.warns(DeprecationWarning):
            answer = _answer(cloud_seconds=1.0, total_seconds=9.0)
        assert answer.cloud_seconds == 1.0

    def test_new_name_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            answer = _answer(cloud_seconds=3.0)
            assert answer.cloud_seconds == 3.0


class TestClientOutcomeRename:
    def test_seconds_property_warns_once_and_aliases(self):
        outcome = ClientOutcome(
            matches=[], expansion_seconds=1.0, filter_seconds=0.5
        )
        with pytest.warns(DeprecationWarning, match="client_seconds") as record:
            value = outcome.seconds
        _one_warning(record)
        assert value == 1.5

    def test_new_name_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = ClientOutcome(matches=[], expansion_seconds=1.0)
            assert outcome.client_seconds == 1.0


class TestImportSurface:
    def test_observability_importable_from_repro(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import (  # noqa: F401
                MetricsRegistry,
                Observability,
                Span,
                Trace,
                Tracer,
            )

    def test_metrics_views_importable_from_repro_and_core(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import BatchMetrics as top  # noqa: F401
            from repro.core import QueryMetrics as mid  # noqa: F401

    def test_historical_core_metrics_module_is_silent(self):
        """The classes moved homes but not names: no warning on import."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.metrics import (  # noqa: F401
                AggregatedMetrics,
                BatchMetrics,
                PublishMetrics,
                QueryMetrics,
                format_percent,
            )

    def test_core_metrics_classes_are_the_obs_views(self):
        import repro.core.metrics as legacy
        import repro.obs.views as views

        assert legacy.QueryMetrics is views.QueryMetrics
        assert legacy.PublishMetrics is views.PublishMetrics
        assert legacy.BatchMetrics is views.BatchMetrics
        assert legacy.AggregatedMetrics is views.AggregatedMetrics


@pytest.fixture(scope="module")
def figure1_system():
    from repro import PrivacyPreservingSystem, SystemConfig
    from repro.graph import example_social_network

    graph, schema = example_social_network()
    return PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))


class TestQueryOptionsShims:
    """The submit()/QueryOptions redesign: keyword soup keeps working.

    ``query(limit=)`` and ``query_batch(max_workers=/backend=/limit=)``
    are deprecated in favor of ``QueryOptions``; each use warns exactly
    once with the replacement spelled out, maps onto the same behavior,
    and mixing old and new spellings is a hard error.
    """

    def test_query_limit_warns_once_and_limits(self, figure1_system):
        from repro.graph import example_query

        with pytest.warns(DeprecationWarning, match="max_results") as record:
            outcome = figure1_system.query(example_query(), limit=1)
        _one_warning(record)
        assert len(outcome.matches) == 1

    def test_query_limit_plus_options_is_an_error(self, figure1_system):
        from repro import QueryOptions
        from repro.exceptions import ConfigError
        from repro.graph import example_query

        with pytest.raises(ConfigError, match="not both"):
            figure1_system.query(
                example_query(), limit=1, options=QueryOptions(max_results=1)
            )

    def test_query_batch_max_workers_warns_and_maps(self, figure1_system):
        from repro.graph import example_query

        queries = [example_query(), example_query()]
        with pytest.warns(DeprecationWarning, match="workers") as record:
            outcome = figure1_system.query_batch(queries, max_workers=2)
        _one_warning(record)
        assert [len(o.matches) for o in outcome.outcomes] == [2, 2]

    def test_query_batch_backend_warns_and_maps(self, figure1_system):
        from repro.graph import example_query

        with pytest.warns(DeprecationWarning, match="backend") as record:
            outcome = figure1_system.query_batch(
                [example_query()], backend="serial"
            )
        _one_warning(record)
        assert outcome.metrics.backend == "serial"

    def test_query_batch_limit_warns_and_maps(self, figure1_system):
        from repro.graph import example_query

        with pytest.warns(DeprecationWarning, match="max_results") as record:
            outcome = figure1_system.query_batch([example_query()], limit=1)
        _one_warning(record)
        assert len(outcome.outcomes[0].matches) == 1

    def test_query_batch_legacy_plus_options_is_an_error(
        self, figure1_system
    ):
        from repro import QueryOptions
        from repro.exceptions import ConfigError
        from repro.graph import example_query

        with pytest.raises(ConfigError, match="not both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                figure1_system.query_batch(
                    [example_query()],
                    backend="serial",
                    options=QueryOptions(backend="serial"),
                )

    def test_submit_and_options_paths_are_silent(self, figure1_system):
        from repro import QueryOptions
        from repro.graph import example_query

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = figure1_system.submit(
                [example_query()],
                options=QueryOptions(backend="serial", max_results=1),
            )
            assert len(outcome.outcomes[0].matches) == 1
            single = figure1_system.query(
                example_query(), options=QueryOptions(max_results=1)
            )
            assert len(single.matches) == 1


class TestPipelineIsWarningClean:
    def test_end_to_end_query_emits_no_deprecation_warnings(self):
        from repro import PrivacyPreservingSystem, SystemConfig
        from repro.graph import example_query, example_social_network

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            graph, schema = example_social_network()
            system = PrivacyPreservingSystem.setup(
                graph, schema, SystemConfig(k=2)
            )
            outcome = system.query(example_query())
            assert len(outcome.matches) == 2
