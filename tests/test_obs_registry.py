"""Unit tests for the metrics registry and the exporters.

Includes golden-file tests: a deterministic trace + registry are
exported and compared byte-for-byte against ``tests/data/``.  If the
export formats change intentionally, regenerate with::

    PYTHONPATH=src:tests python -c "import test_obs_registry as t; t.regenerate()"
"""

import json
import re
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, Span, Trace, prometheus_text
from repro.obs.exporters import (
    PROM_LINE_RE,
    chrome_trace_dict,
    export_chrome_trace,
    export_dict,
    export_json,
    format_summary,
    prom_name,
    write_prometheus,
)
from repro.obs.registry import NULL_REGISTRY

DATA_DIR = Path(__file__).parent / "data"


class TestCounter:
    def test_inc_and_total(self):
        counter = MetricsRegistry().counter("queries_total")
        counter.inc()
        counter.inc(2)
        assert counter.total == 3.0

    def test_labels_partition_the_series(self):
        counter = MetricsRegistry().counter("network_bytes_total")
        counter.inc(10, direction="query")
        counter.inc(20, direction="answer")
        assert counter.value(direction="query") == 10.0
        assert counter.value(direction="answer") == 20.0
        assert counter.total == 30.0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_unset_series_reads_zero_but_absent(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value() == 0.0
        assert not counter.present()
        counter.inc(0)
        assert counter.present() and counter.value() == 0.0


class TestGauge:
    def test_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("join_intermediate_peak")
        gauge.set(5)
        gauge.set_max(3)  # lower: ignored
        assert gauge.value() == 5.0
        gauge.set_max(9)
        assert gauge.value() == 9.0

    def test_unset_reads_zero_like_counter(self):
        # unified with Counter.value(): 0.0 default, present() to
        # distinguish "never set" from "set to zero"
        gauge = MetricsRegistry().gauge("g")
        assert gauge.value() == 0.0
        assert not gauge.present()
        gauge.set(0.0)
        assert gauge.present() and gauge.value() == 0.0

    def test_present_is_per_label_series(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.5, site="cloud")
        assert gauge.present(site="cloud")
        assert not gauge.present(site="client")
        assert gauge.value(site="client") == 0.0

    def test_remove_drops_exactly_one_series(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0, query_id="q-1")
        gauge.set(2.0, query_id="q-2")
        assert gauge.remove(query_id="q-1") is True
        assert not gauge.present(query_id="q-1")
        assert gauge.value(query_id="q-2") == 2.0
        # removing an absent series reports False and changes nothing
        assert gauge.remove(query_id="q-1") is False
        assert gauge.remove(query_id="never-set") is False

    def test_null_gauge_remove_is_inert(self):
        assert NULL_REGISTRY.gauge("g").remove(query_id="q") is False


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        hist = MetricsRegistry().histogram("query_seconds", buckets=(0.01, 0.1, 1.0))
        hist.observe(0.005)
        hist.observe(0.05)
        hist.observe(5.0)  # above every bound: only +Inf
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.055)
        snap = hist.snapshot_one(())
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1.0": 2}

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_callback_evaluated_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"hits": 0}
        registry.register_callback(
            "star_cache_hits_total", lambda: state["hits"], "cache hits"
        )
        state["hits"] = 7
        snapshot = registry.snapshot()
        assert snapshot["star_cache_hits_total"]["series"][0]["value"] == 7.0
        assert ("star_cache_hits_total", 7.0, "cache hits") in registry.callbacks()

    def test_null_registry_accepts_everything_stores_nothing(self):
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.snapshot() == {}


def _golden_trace() -> Trace:
    """A deterministic three-span trace (no clocks involved)."""
    return Trace(
        spans=[
            Span(
                name="cloud.star_matching",
                span_id=2,
                parent_id=1,
                depth=1,
                started_at=0.001,
                duration=0.004,
                thread="MainThread",
                pid=1,
                attributes={"stars": 2, "rs_size": 8},
            ),
            Span(
                name="cloud.answer",
                span_id=1,
                parent_id=None,
                depth=0,
                started_at=0.0,
                duration=0.01,
                thread="MainThread",
                pid=1,
                attributes={"rs_size": 8, "rin_size": 4},
            ),
            Span(
                name="client.filter",
                span_id=3,
                parent_id=None,
                depth=0,
                started_at=0.011,
                duration=0.002,
                thread="MainThread",
                pid=1,
                attributes={"candidates": 4, "results": 2, "dropped": 2},
            ),
        ]
    )


def _golden_registry() -> MetricsRegistry:
    """A deterministic registry covering all three metric kinds + a callback."""
    registry = MetricsRegistry()
    registry.counter("queries_total", "queries answered").inc(3)
    bytes_total = registry.counter("network_bytes_total", "wire bytes")
    bytes_total.inc(120, direction="query")
    bytes_total.inc(340, direction="answer")
    registry.gauge("join_intermediate_peak", "peak |join|").set_max(42)
    hist = registry.histogram("query_seconds", "end-to-end", buckets=(0.01, 0.1, 1.0))
    hist.observe(0.005)
    hist.observe(0.25)
    registry.register_callback("star_cache_hits_total", lambda: 5, "cache hits")
    return registry


class TestGoldenFiles:
    def test_json_export_matches_golden(self, tmp_path):
        path = export_json(
            tmp_path / "trace.json",
            trace=_golden_trace(),
            registry=_golden_registry(),
            extra={"command": "golden"},
        )
        expected = (DATA_DIR / "golden_trace.json").read_text(encoding="utf-8")
        assert path.read_text(encoding="utf-8") == expected

    def test_prometheus_export_matches_golden(self, tmp_path):
        path = write_prometheus(_golden_registry(), tmp_path / "metrics.prom")
        expected = (DATA_DIR / "golden_metrics.prom").read_text(encoding="utf-8")
        assert path.read_text(encoding="utf-8") == expected

    def test_golden_json_round_trips_through_trace(self):
        doc = json.loads((DATA_DIR / "golden_trace.json").read_text(encoding="utf-8"))
        trace = Trace.from_dict(doc["trace"])
        assert trace.first("cloud.answer").attributes["rin_size"] == 4
        assert doc["trace"]["total_seconds"] == pytest.approx(0.012)


class TestPrometheusFormat:
    def test_every_line_parses(self):
        text = prometheus_text(_golden_registry())
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"

    def test_histogram_series_is_cumulative_and_ends_at_inf(self):
        text = prometheus_text(_golden_registry())
        buckets = re.findall(
            r'repro_query_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert buckets == [("0.01", "1"), ("0.1", "1"), ("1.0", "2"), ("+Inf", "2")]
        assert "repro_query_seconds_count 2" in text
        assert "repro_query_seconds_sum 0.255" in text

    def test_name_sanitization(self):
        assert prom_name("cloud.star-cache hits") == "repro_cloud_star_cache_hits"

    def test_labels_escaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, z="quote\"inside", a="back\\slash")
        text = prometheus_text(registry)
        assert 'repro_c{a="back\\\\slash",z="quote\\"inside"} 1' in text
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"

    def test_newline_in_label_value_stays_one_line(self):
        # a raw newline would split the sample across two unparseable
        # lines; the exposition format says it must become a literal \n
        registry = MetricsRegistry()
        registry.counter("c").inc(1, q="line one\nline two")
        text = prometheus_text(registry)
        assert 'repro_c{q="line one\\nline two"} 1' in text
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"

    def test_backslash_then_n_distinct_from_newline(self):
        # "a\\nb" (backslash + n) and "a\nb" (newline) must render as
        # distinct series: \\n vs \n in the exposition text
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, q="a\\nb")
        counter.inc(2, q="a\nb")
        text = prometheus_text(registry)
        assert 'repro_c{q="a\\\\nb"} 1' in text
        assert 'repro_c{q="a\\nb"} 2' in text
        for line in text.strip().splitlines():
            assert PROM_LINE_RE.match(line), f"unparseable line: {line!r}"


class TestSummaryTable:
    def test_groups_by_span_name_with_shares(self):
        text = format_summary(_golden_trace(), _golden_registry(), title="t")
        assert "cloud.answer" in text and "client.filter" in text
        # roots are 10ms + 2ms; the non-root star_matching span does not
        # inflate the wall figure
        assert "wall (root spans): 12.000 ms" in text
        assert "queries_total: 3" in text
        assert "star_cache_hits_total: 5" in text

    def test_empty_trace_renders(self):
        text = format_summary(Trace())
        assert "wall (root spans): 0.000 ms" in text


class TestExportPaths:
    def test_export_json_creates_missing_parent_dirs(self, tmp_path):
        target = tmp_path / "runs" / "2026-08" / "trace.json"
        path = export_json(target, trace=_golden_trace())
        assert path == target and target.is_file()
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["trace"]["total_seconds"] == pytest.approx(0.012)

    def test_write_prometheus_creates_missing_parent_dirs(self, tmp_path):
        target = tmp_path / "scrapes" / "deep" / "metrics.prom"
        path = write_prometheus(_golden_registry(), target)
        assert path == target and target.is_file()


class TestChromeTrace:
    def test_event_per_span_with_microsecond_times(self):
        doc = chrome_trace_dict(_golden_trace())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        by_name = {e["name"]: e for e in complete}
        answer = by_name["cloud.answer"]
        # started_at 0.0 is the origin; durations are microseconds
        assert answer["ts"] == pytest.approx(0.0)
        assert answer["dur"] == pytest.approx(10_000.0)
        assert by_name["client.filter"]["ts"] == pytest.approx(11_000.0)
        assert answer["cat"] == "cloud"
        assert answer["args"]["rin_size"] == 4
        assert answer["args"]["span_id"] == 1

    def test_lanes_get_integer_tids_and_metadata(self):
        doc = chrome_trace_dict(_golden_trace())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        # one (pid, thread) lane in the golden trace -> one tid
        assert {e["tid"] for e in complete} == {1}
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert all(isinstance(e["tid"], int) for e in complete)
        assert doc["displayTimeUnit"] == "ms"

    def test_empty_trace_exports(self):
        doc = chrome_trace_dict(Trace())
        assert doc["traceEvents"] == []

    def test_export_writes_valid_json(self, tmp_path):
        target = tmp_path / "chrome" / "trace.json"
        path = export_chrome_trace(target, _golden_trace())
        assert path == target and target.is_file()
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert len(doc["traceEvents"]) == 5  # 3 spans + 2 metadata


class TestExportDict:
    def test_sections_optional(self):
        assert export_dict() == {"version": 1}
        doc = export_dict(trace=_golden_trace())
        assert "metrics" not in doc and "trace" in doc
        doc = export_dict(registry=_golden_registry(), extra={"k": 2})
        assert doc["k"] == 2 and "trace" not in doc


def regenerate() -> None:  # pragma: no cover - maintenance helper
    DATA_DIR.mkdir(exist_ok=True)
    export_json(
        DATA_DIR / "golden_trace.json",
        trace=_golden_trace(),
        registry=_golden_registry(),
        extra={"command": "golden"},
    )
    write_prometheus(_golden_registry(), DATA_DIR / "golden_metrics.prom")
