"""Integration matrix: exactness across datasets × methods × k.

One systematic sweep through the deployment space the benchmarks
exercise, at a small scale, asserting the end-to-end contract (exact
results, sane metrics) in every cell.
"""

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, QueryOptions, SystemConfig
from repro.matching import find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset

DATASETS = ["Web-NotreDame", "DBpedia", "UK-2002"]
METHODS = ["EFF", "RAN", "FSIM", "BAS"]


@pytest.fixture(scope="module")
def corpus():
    """Datasets and workloads shared across the matrix."""
    out = {}
    for name in DATASETS:
        dataset = load_dataset(name, scale=0.08)
        workload = generate_workload(dataset.graph, 4, 3, seed=31)
        oracles = [
            {match_key(m) for m in find_subgraph_matches(q, dataset.graph)}
            for q in workload
        ]
        out[name] = (dataset, workload, oracles)
    return out


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", [2, 4])
def test_cell_exactness(corpus, dataset_name, method, k):
    dataset, workload, oracles = corpus[dataset_name]
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=k, method=MethodConfig.from_name(method)),
        sample_workload=workload,
    )
    for query, oracle in zip(workload, oracles):
        outcome = system.query(query)
        assert {match_key(m) for m in outcome.matches} == oracle
        metrics = outcome.metrics
        assert metrics.method == method
        assert metrics.k == k
        assert metrics.candidate_count >= metrics.result_count
        assert metrics.answer_bytes > 0


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_cell_with_all_extensions_on(corpus, dataset_name):
    """Every optional engine feature enabled at once stays exact."""
    dataset, workload, oracles = corpus[dataset_name]
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(
            k=3,
            label_aware_alignment=True,
            star_cache_size=128,
            max_intermediate_results=500_000,
            expansion_site="cloud",
        ),
        sample_workload=workload,
    )
    for query, oracle in zip(workload + workload, oracles + oracles):
        outcome = system.query(query)
        assert {match_key(m) for m in outcome.matches} == oracle


class TestMultiAttributeTypes:
    """The paper's DBpedia has ~101 attributes over 86 types; exercise
    multi-attribute schemas end to end."""

    def test_three_attributes_per_type(self):
        from repro.graph import make_schema, random_attributed_graph
        from repro.workloads import generate_workload

        schema = make_schema(3, 3, 8)
        graph = random_attributed_graph(
            schema, 90, edges_per_vertex=2, labels_per_vertex=1, seed=17
        )
        workload = generate_workload(graph, 3, 3, seed=5)
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=3), sample_workload=workload
        )
        for query in workload:
            outcome = system.query(query)
            oracle = {match_key(m) for m in find_subgraph_matches(query, graph)}
            assert {match_key(m) for m in outcome.matches} == oracle

    def test_lct_groups_per_attribute(self):
        from repro.graph import make_schema, random_attributed_graph

        schema = make_schema(2, 3, 6)
        graph = random_attributed_graph(schema, 40, seed=1)
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        lct = system.published.lct
        # every (type, attribute) universe got its own groups: 6 labels
        # at theta=2 -> 3 groups x 3 attributes x 2 types
        assert lct.group_count() == 18


class TestResultLimit:
    def test_limit_returns_subset(self, corpus):
        dataset, workload, oracles = corpus["DBpedia"]
        system = PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=2), sample_workload=workload
        )
        query, oracle = workload[0], oracles[0]
        limited = system.query(query, options=QueryOptions(max_results=1))
        assert len(limited.matches) == min(1, len(oracle))
        assert {match_key(m) for m in limited.matches} <= oracle

    def test_limit_larger_than_results_is_harmless(self, corpus):
        dataset, workload, oracles = corpus["DBpedia"]
        system = PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=2), sample_workload=workload
        )
        outcome = system.query(workload[0], options=QueryOptions(max_results=10_000))
        assert {match_key(m) for m in outcome.matches} == oracles[0]
