# lint: module=repro.cloud.fixture_component
"""R2 fixture (clean): span and metric names come from the taxonomy.

Mentioning ``cloud.star_matching`` in a docstring is fine — R2 skips
docstrings.
"""

from repro.obs import Observability, names


def timed_answer(obs: Observability) -> None:
    with obs.tracer.span(names.CLOUD_STAR_MATCHING):
        pass
    obs.metrics.counter(names.M_QUERIES).inc()
    # ordinary literals that merely *look* like words are fine:
    kind = "query"
    direction = "answer"
    del kind, direction
