# lint: module=repro.cloud.fixture_component
"""R5 fixture (violating): library code leaning on its own compat shims."""


def report(answer, outcome) -> float:
    return answer.total_seconds + outcome.seconds  # both shimmed


def build(CloudAnswer, matches) -> object:
    return CloudAnswer(matches=matches, total_seconds=1.0)  # shimmed keyword
