# lint: module=repro.cloud.fixture_component
"""R2 fixture (violating): literal span/metric names shadowing the taxonomy."""

from repro.obs import Observability


def timed_answer(obs: Observability, direction: str) -> None:
    with obs.tracer.span("cloud.star_matching"):  # literal span-call name
        pass
    name = "cloud.answer"  # dotted canonical span name at rest
    metric = "queries_total"  # canonical metric name
    with obs.tracer.span(f"network.{direction}"):  # runtime-built span name
        pass
    del name, metric
