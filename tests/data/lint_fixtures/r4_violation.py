"""R4 fixture (violating): serialization, logging and repr in a hot loop."""

import json
import logging

from repro.analysis.markers import hot_path


@hot_path
def join_rows(rows: list[tuple[int, ...]]) -> list[str]:
    out: list[str] = []
    for row in rows:
        logging.debug("joining %s", row)  # logging in the hot path
        out.append(json.dumps(row))  # serialization in the hot path
        label = f"row-{row[0]}"  # per-iteration f-string allocation
        out.append(label)
    return out


@hot_path
def describe(row: tuple[int, ...]) -> str:
    return repr(row)  # repr off the error path
