# lint: module=repro.cloud.fixture_component
"""R1 fixture (clean): a cloud module importing only the published surface."""

from repro.anonymize.cost_model import estimator_from_outsourced
from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable
from repro.obs import Observability, names


def answer(graph: AttributedGraph, avt: AlignmentVertexTable) -> int:
    obs = Observability.disabled()
    with obs.tracer.span(names.CLOUD_ANSWER):
        estimator_from_outsourced
        return graph.vertex_count
