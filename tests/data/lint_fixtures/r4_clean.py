"""R4 fixture (clean): a hot function that stays lean."""

from repro.analysis.markers import hot_path


@hot_path
def join_rows(rows: list[tuple[int, ...]], limit: int) -> list[tuple[int, ...]]:
    out: list[tuple[int, ...]] = []
    for row in rows:
        if len(out) >= limit:
            # f-strings on the raise path only evaluate on error
            raise ValueError(f"result budget exceeded at {limit}")
        out.append(row)
    return out


def cold_reporter(rows: list[tuple[int, ...]]) -> str:
    # not decorated, not a hot module: formatting is fine here
    return "\n".join(f"{row!r}" for row in rows)
