# lint: module=repro.core.protocol
"""R8 fixture (violating): envelope, pairing and registry breakage."""

_DECODE_ERRORS = (KeyError, ValueError, TypeError)


class ProtocolError(Exception):
    pass


def encode_ping(seq):
    # one-sided (no decode_ping) AND unregistered ("ping" not in CODEC_TABLE)
    return {"seq": seq}


def encode_query(query):
    return {"query": query}


def decode_query(payload):
    return payload["query"]  # raw KeyError leaks: no envelope at all


def encode_upload(rows):
    return {"rows": rows}


def decode_upload(payload):
    try:
        return payload["rows"]
    except KeyError as exc:  # too narrow: ValueError/TypeError leak
        raise ProtocolError(f"malformed upload message: {exc}") from exc


def encode_answer(rows):
    return {"rows": rows}


def decode_answer(payload):
    try:
        return payload["rows"]
    except _DECODE_ERRORS as exc:
        # INFO: the message does not follow the "malformed ..." convention
        raise ProtocolError(f"bad answer frame: {exc}") from exc


def encode_trace_context(span_id):
    return {"span": span_id}


def decode_trace_context(payload):
    try:
        return payload["span"]
    except _DECODE_ERRORS as exc:
        raise ValueError(f"malformed trace: {exc}") from exc  # wrong envelope


def route(kind, payload):
    if kind == "heartbeat":  # not in FRAME_KINDS
        return None
    return encode_frame("pong", payload)  # not in FRAME_KINDS
