# lint: module=repro.core.protocol
"""R8 fixture (clean): paired, registered, enveloped codecs."""

_DECODE_ERRORS = (KeyError, ValueError, TypeError)


class ProtocolError(Exception):
    pass


def encode_query(query):
    return {"query": query}


def decode_query(payload):
    """A docstring before the envelope is allowed."""
    try:
        return payload["query"]
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed query message: {exc}") from exc


def encode_upload(rows):
    return {"rows": rows}


def decode_upload(payload):
    try:
        return [tuple(row) for row in payload["rows"]]
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed upload message: {exc}") from exc


def route(kind, payload):
    if kind == "answer":  # a registered frame kind
        return encode_frame("answer", payload)
    return None
