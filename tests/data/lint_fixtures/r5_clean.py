# lint: module=repro.cloud.fixture_component
"""R5 fixture (clean): post-redesign spellings and unrelated .seconds uses."""


def report(answer, outcome, trace, stats) -> float:
    total = answer.cloud_seconds + outcome.client_seconds
    # different, canonical APIs — not the shims:
    total += trace.total_seconds
    total += stats.seconds
    return total
