# lint: module=repro.gateway.fixture_component
"""R6 fixture (violating): plaintext, secrets and error text hit the wire."""


def leak_label_rows(lct, channel, rows, obs):
    # members() de-anonymizes group ids back to raw labels...
    labels = [lct.members(gid) for gid in rows]
    payload = encode_upload(labels)  # ...which then reach a wire codec
    channel.transmit("upload", payload, obs=obs)
    return payload


def log_credentials(client, log):
    # the credential lands verbatim in the JSONL event log
    log.emit("auth_attempt", token=client.token)


def frame_reject(reason):
    # helper summary: parameter `reason` reaches a wire codec
    return encode_gateway_reject("r-1", "internal", reason)


def reject_with_internals(request):
    try:
        handle(request)
    except Exception as exc:
        # internal error text flows interprocedurally through the helper
        return frame_reject(f"boom: {exc}")


def wrap_error(request):
    try:
        handle(request)
    except Exception as exc:
        # a boundary exception built from internal error text
        raise GatewayError(f"failed: {exc}") from exc
