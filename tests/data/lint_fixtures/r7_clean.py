# lint: module=repro.gateway.fixture_component
"""R7 fixture (clean): async-native waiting and executor dispatch."""

import asyncio

from repro.analysis.markers import hot_path


@hot_path
def score_rows(rows):
    return sum(len(row) for row in rows)


async def serve(request, loop, pool):
    await asyncio.sleep(0.05)
    # referencing a blocking/hot function is the sanctioned pattern;
    # the pool runs it off the loop
    return await loop.run_in_executor(pool, score_rows, request)


async def report(parts, worker):
    text = ", ".join(parts)  # str.join with an argument is fine
    await asyncio.wrap_future(worker)
    return text


def offline_loader(path):
    # not reachable from any coroutine: sync callers may block
    with open(path) as handle:
        return handle.read()
