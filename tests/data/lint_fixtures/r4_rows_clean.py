"""R4 rows fixture (clean): hot code that stays off the tuple rows.

The hot function consumes flat columns; the sanctioned tuple fallback
hoists the materialized list into a local before looping; adapters at
the representation boundary use comprehensions, which are exempt.
"""

from repro.analysis.markers import hot_path


@hot_path
def sum_first_column(cols: list[list[int]]) -> int:
    total = 0
    for value in cols[0]:  # flat column, not tuple rows
        total += value
    return total


@hot_path
def tuple_fallback(table) -> int:
    rows = table.rows  # explicit materialization point
    total = 0
    for row in rows:
        total += row[0]
    return total


@hot_path
def boundary_adapter(table) -> list[dict[int, int]]:
    # comprehensions over .rows are the boundary idiom (to_matches,
    # codecs) and exempt by design
    return [dict(enumerate(row)) for row in table.rows]


def cold_scan(table) -> int:
    # not decorated, not a hot module: direct iteration is fine here
    total = 0
    for row in table.rows:
        total += row[0]
    return total
