# lint: module=repro.gateway.fixture_component
"""R6 fixture (clean): sanitized, summarized, or allowed-by-design flows."""


def publish_groups(lct, labels, channel, obs):
    # group_of is a declared sanitizer: raw labels -> published ids
    groups = [lct.group_of(label) for label in labels]
    payload = encode_upload(groups)
    channel.transmit("upload", payload, obs=obs)
    return payload


def summarize_expansion(lct, gids, log):
    # len() is declared neutral: a count is not content
    size = len([lct.members(gid) for gid in gids])
    log.emit("expansion_size", size=size)


def hello(conn, client):
    # the hello frame is the credential carrier by design (allows=secret)
    return encode_gateway_hello(conn.client_id, client.token)


def reject_safely(request):
    try:
        handle(request)
    except Exception as exc:
        # only the exception *type* crosses the wire
        return encode_gateway_reject("r-1", "internal", type(exc).__name__)
