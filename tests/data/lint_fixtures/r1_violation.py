# lint: module=repro.cloud.fixture_component
"""R1 fixture (violating): the cloud reaching across the trust boundary."""

import repro.core.data_owner  # the owner holds plaintext G
from repro.anonymize.lct import LabelCorrespondenceTable  # the private LCT
from repro.client.expansion import expand_matches  # client-side plaintext


def peek() -> None:
    # imports nested inside functions are caught too
    from ..client import filtering  # resolves to repro.client

    filtering, expand_matches, LabelCorrespondenceTable, repro
