"""R3 fixture (violating): guarded attributes touched without the lock."""

import threading


class Ring:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[int] = []  #: guarded by _lock
        #: guarded by _lock
        self._total = 0

    def push(self, value: int) -> None:
        self._entries.append(value)  # no lock held
        with self._lock:
            self._total += value

    def racy_reset(self) -> None:
        with self._lock:
            self._entries = []
        self._total = 0  # outside the with block

    def callback_leak(self) -> None:
        with self._lock:
            # the lambda runs later, when the lock is no longer held
            return lambda: len(self._entries)
