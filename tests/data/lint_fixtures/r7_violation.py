# lint: module=repro.gateway.fixture_component
"""R7 fixture (violating): blocking work on the gateway event loop."""

import subprocess
import time

from repro.analysis.markers import hot_path


@hot_path
def score_rows(rows):
    return sum(len(row) for row in rows)


async def serve(request, pool):
    time.sleep(0.1)  # blocking sleep on the loop
    data = open("payload.bin").read()  # sync file I/O on the loop
    scored = pool.submit(score_rows, data).result()  # blocking wait
    _relay(scored)
    return scored


def _relay(scored):
    # sync helper, but reachable from async serve()
    subprocess.run(["notify", str(scored)])


async def rank(rows):
    # direct hot-kernel call on the loop (WARNING severity)
    return score_rows(rows)


async def drain(worker):
    worker.join()  # thread join on the loop
