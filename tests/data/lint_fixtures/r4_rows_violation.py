"""R4 rows fixture (violating): per-row loops over MatchTable.rows."""

from repro.analysis.markers import hot_path


@hot_path
def scan(table) -> int:
    total = 0
    for row in table.rows:  # line 9: direct per-row iteration
        total += row[0]
    return total


@hot_path
def scan_prefix(table, n: int) -> int:
    total = 0
    for row in table.rows[:n]:  # line 17: a slice is still tuple rows
        total += row[0]
    return total


@hot_path
def scan_enumerated(table) -> int:
    total = 0
    for i, row in enumerate(table.rows):  # line 25: wrapped iteration
        total += i + row[0]
    return total
