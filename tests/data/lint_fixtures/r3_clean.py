"""R3 fixture (clean): every guarded access holds the declared lock."""

import threading


class Ring:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[int] = []  #: guarded by _lock
        #: guarded by _lock
        self._total = 0

    def push(self, value: int) -> None:
        with self._lock:
            self._entries.append(value)
            self._total += value

    def snapshot(self) -> list[int]:
        with self._lock:
            return list(self._entries)

    def unrelated(self) -> int:
        return 42  # touching nothing guarded is fine
