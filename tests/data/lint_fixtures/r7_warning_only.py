# lint: module=repro.gateway.fixture_component
"""R7 fixture (warning-only): used by the --fail-on CLI tests."""

from repro.analysis.markers import hot_path


@hot_path
def kernel(rows):
    return sum(len(row) for row in rows)


async def serve(rows):
    # the only finding: a WARNING-severity hot-kernel call
    return kernel(rows)
