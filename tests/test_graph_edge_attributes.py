"""Unit tests for edge-attribute reification (Section 2.1's remark)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    AttributedGraph,
    EdgePayload,
    reify_edge_attributes,
    reify_query_edge,
)
from repro.matching import count_matches, find_subgraph_matches


def employment_graph() -> AttributedGraph:
    graph = AttributedGraph("employment")
    graph.add_vertex(0, "person", {"gender": ["male"]})
    graph.add_vertex(1, "person", {"gender": ["female"]})
    graph.add_vertex(2, "company", {"kind": ["internet"]})
    graph.add_edge(0, 2)
    graph.add_edge(1, 2)
    graph.add_edge(0, 1)
    return graph


class TestReify:
    def test_edge_becomes_imaginary_vertex(self):
        graph = employment_graph()
        reified = reify_edge_attributes(
            graph,
            [EdgePayload(0, 2, "employment", {"since": ["2010"]})],
        )
        out = reified.graph
        assert not out.has_edge(0, 2)
        imaginary = next(iter(reified.edge_of_vertex))
        assert out.has_edge(0, imaginary)
        assert out.has_edge(imaginary, 2)
        assert out.vertex(imaginary).vertex_type == "employment"
        assert out.vertex(imaginary).labels == {"since": frozenset({"2010"})}
        assert reified.original_edge(imaginary) == (0, 2)

    def test_vertex_and_edge_counts(self):
        graph = employment_graph()
        reified = reify_edge_attributes(
            graph, [EdgePayload(0, 2, "rel"), EdgePayload(1, 2, "rel")]
        )
        # each reified edge: -1 edge, +1 vertex, +2 edges
        assert reified.graph.vertex_count == graph.vertex_count + 2
        assert reified.graph.edge_count == graph.edge_count + 2

    def test_missing_edge_rejected(self):
        with pytest.raises(GraphError):
            reify_edge_attributes(employment_graph(), [EdgePayload(0, 99, "rel")])

    def test_duplicate_payload_rejected(self):
        with pytest.raises(GraphError):
            reify_edge_attributes(
                employment_graph(),
                [EdgePayload(0, 2, "rel"), EdgePayload(2, 0, "rel")],
            )

    def test_original_graph_untouched(self):
        graph = employment_graph()
        reify_edge_attributes(graph, [EdgePayload(0, 2, "rel")])
        assert graph.has_edge(0, 2)

    def test_unknown_imaginary_vertex(self):
        reified = reify_edge_attributes(employment_graph(), [])
        with pytest.raises(GraphError):
            reified.original_edge(12345)


class TestMatchingSemantics:
    def test_reified_query_matches_reified_graph(self):
        """Reifying data + query consistently preserves match counts."""
        graph = employment_graph()
        data_reified = reify_edge_attributes(
            graph,
            [
                EdgePayload(0, 2, "employment", {"since": ["2010"]}),
                EdgePayload(1, 2, "employment", {"since": ["2015"]}),
            ],
        ).graph

        # who has worked at a company since 2010?
        query = AttributedGraph()
        query.add_vertex(0, "person")
        query.add_vertex(1, "company")
        query.add_edge(0, 1)
        reified_query = reify_query_edge(
            query, 0, 1, "employment", {"since": ["2010"]}
        )
        matches = find_subgraph_matches(reified_query, data_reified)
        assert len(matches) == 1
        assert matches[0][0] == 0  # the 2010 hire

    def test_unconstrained_relationship_matches_all(self):
        graph = employment_graph()
        data_reified = reify_edge_attributes(
            graph,
            [
                EdgePayload(0, 2, "employment", {"since": ["2010"]}),
                EdgePayload(1, 2, "employment", {"since": ["2015"]}),
            ],
        ).graph
        query = AttributedGraph()
        query.add_vertex(0, "person")
        query.add_vertex(1, "company")
        query.add_edge(0, 1)
        reified_query = reify_query_edge(query, 0, 1, "employment")
        assert count_matches(reified_query, data_reified) == 2


class TestThroughPrivacyPipeline:
    def test_reified_graph_survives_the_full_pipeline(self):
        """Edge labels protected end to end via the imaginary vertices."""
        from repro import PrivacyPreservingSystem, SystemConfig
        from repro.graph import schema_from_graph
        from repro.matching import match_key

        graph = employment_graph()
        reified = reify_edge_attributes(
            graph,
            [
                EdgePayload(0, 2, "employment", {"since": ["2010", "2015"]}),
                EdgePayload(1, 2, "employment", {"since": ["2015", "2020"]}),
            ],
        ).graph
        schema = schema_from_graph(reified)

        query = AttributedGraph()
        query.add_vertex(0, "person")
        query.add_vertex(1, "company")
        query.add_edge(0, 1)
        reified_query = reify_query_edge(
            query, 0, 1, "employment", {"since": ["2015"]}
        )

        system = PrivacyPreservingSystem.setup(reified, schema, SystemConfig(k=2))
        outcome = system.query(reified_query)
        oracle = {
            match_key(m) for m in find_subgraph_matches(reified_query, reified)
        }
        assert {match_key(m) for m in outcome.matches} == oracle
        assert len(outcome.matches) == 2
