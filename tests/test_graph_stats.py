"""Unit tests for frequency statistics (Equation 1 of the paper)."""

import pytest

from repro.graph import (
    AttributedGraph,
    compute_statistics,
    degree_histogram,
    merge_statistics,
)


def labeled_graph() -> AttributedGraph:
    graph = AttributedGraph()
    graph.add_vertex(0, "person", {"gender": ["male"]})
    graph.add_vertex(1, "person", {"gender": ["female"]})
    graph.add_vertex(2, "person", {"gender": ["male"]})
    graph.add_vertex(3, "company", {"kind": ["internet"]})
    graph.add_edge(0, 1)
    graph.add_edge(0, 3)
    return graph


class TestComputeStatistics:
    def test_type_frequency(self):
        stats = compute_statistics(labeled_graph())
        assert stats.frequency_of_type("person") == pytest.approx(0.75)
        assert stats.frequency_of_type("company") == pytest.approx(0.25)
        assert stats.frequency_of_type("missing") == 0.0

    def test_label_frequency_is_conditional_on_type(self):
        stats = compute_statistics(labeled_graph())
        # 2 of 3 persons are male
        assert stats.frequency_of_label("person", "gender", "male") == pytest.approx(
            2 / 3
        )
        assert stats.frequency_of_label("company", "kind", "internet") == 1.0
        assert stats.frequency_of_label("person", "gender", "zzz") == 0.0

    def test_average_degree(self):
        stats = compute_statistics(labeled_graph())
        assert stats.average_degree == pytest.approx(1.0)

    def test_empty_graph(self):
        stats = compute_statistics(AttributedGraph())
        assert stats.vertex_count == 0
        assert stats.type_frequency == {}
        assert stats.frequency_of_type("t") == 0.0

    def test_labels_of_and_attribute_pairs(self):
        stats = compute_statistics(labeled_graph())
        assert stats.labels_of("person", "gender") == ["female", "male"]
        assert stats.attribute_pairs() == [
            ("company", "kind"),
            ("person", "gender"),
        ]

    def test_multi_label_vertices_count_per_label(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "t", {"a": ["x", "y"]})
        stats = compute_statistics(graph)
        assert stats.frequency_of_label("t", "a", "x") == 1.0
        assert stats.frequency_of_label("t", "a", "y") == 1.0


class TestMergeStatistics:
    def test_merge_averages_frequencies(self):
        a = AttributedGraph()
        a.add_vertex(0, "t", {"a": ["x"]})
        b = AttributedGraph()
        b.add_vertex(0, "t", {"a": ["y"]})
        b.add_vertex(1, "t", {"a": ["y"]})
        merged = merge_statistics([compute_statistics(a), compute_statistics(b)])
        # graph a: P(x|t)=1; graph b: P(x|t)=0 -> average 0.5
        assert merged.frequency_of_label("t", "a", "x") == pytest.approx(0.5, rel=1e-6)
        assert merged.frequency_of_label("t", "a", "y") == pytest.approx(0.5, rel=1e-6)
        assert merged.frequency_of_type("t") == pytest.approx(1.0, rel=1e-6)

    def test_merge_empty_list(self):
        merged = merge_statistics([])
        assert merged.vertex_count == 0

    def test_merge_weighs_queries_equally(self):
        small = AttributedGraph()
        small.add_vertex(0, "t", {"a": ["x"]})
        big = AttributedGraph()
        for i in range(10):
            big.add_vertex(i, "t", {"a": ["y"]})
        merged = merge_statistics([compute_statistics(small), compute_statistics(big)])
        # per-query averaging: x gets 0.5 despite the size imbalance
        assert merged.frequency_of_label("t", "a", "x") == pytest.approx(0.5, rel=1e-6)


class TestDegreeHistogram:
    def test_histogram(self):
        hist = degree_histogram(labeled_graph())
        assert hist == {2: 1, 1: 2, 0: 1}


class TestZipfEstimation:
    def test_recovers_known_skew(self):
        from repro.graph import estimate_zipf_skew, zipf_weights

        for skew in (0.5, 1.0, 1.5):
            estimated = estimate_zipf_skew(zipf_weights(100, skew))
            assert estimated == pytest.approx(skew, abs=0.05)

    def test_uniform_distribution_has_zero_skew(self):
        from repro.graph import estimate_zipf_skew

        assert estimate_zipf_skew([0.25] * 4) == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_inputs(self):
        from repro.graph import estimate_zipf_skew

        assert estimate_zipf_skew([]) == 0.0
        assert estimate_zipf_skew([1.0]) == 0.0
        assert estimate_zipf_skew([0.0, 0.0]) == 0.0

    def test_dataset_analogues_are_zipfian(self):
        """The paper's observation holds on the generated analogues."""
        from repro.graph import (
            compute_statistics,
            estimate_zipf_skew,
            label_frequency_spectrum,
        )
        from repro.workloads import load_dataset

        dataset = load_dataset("Web-NotreDame", scale=0.3)
        stats = compute_statistics(dataset.graph)
        spectrum = label_frequency_spectrum(stats, "page0", "page0_a0")
        skew = estimate_zipf_skew(spectrum)
        assert 0.3 < skew < 1.5  # clearly skewed, roughly the configured 0.8

    def test_spectrum_sorted_descending(self):
        from repro.graph import compute_statistics, label_frequency_spectrum

        stats = compute_statistics(labeled_graph())
        spectrum = label_frequency_spectrum(stats, "person", "gender")
        assert spectrum == sorted(spectrum, reverse=True)
