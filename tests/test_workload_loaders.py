"""Tests for the SNAP edge-list loader and synthetic label assignment."""

import pytest

from repro.exceptions import GraphError
from repro.graph import validate_graph
from repro.workloads import assign_synthetic_labels, load_snap_edgelist

SNAP_SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 6 Edges: 8
# FromNodeId\tToNodeId
0\t1
0\t2
1\t2
2\t0
3\t4
4\t5
5\t3
7\t7
"""


@pytest.fixture
def snap_file(tmp_path):
    path = tmp_path / "web-sample.txt"
    path.write_text(SNAP_SAMPLE)
    return path


class TestLoadSnapEdgelist:
    def test_parses_and_renumbers(self, snap_file):
        graph = load_snap_edgelist(snap_file)
        # ids 0,1,2,3,4,5,7 -> 7 distinct vertices, renumbered 0..6
        assert graph.vertex_count == 7
        assert sorted(graph.vertex_ids()) == list(range(7))

    def test_reverse_duplicates_and_self_loops_collapse(self, snap_file):
        graph = load_snap_edgelist(snap_file)
        # (0,2) and (2,0) collapse; (7,7) self loop dropped
        assert graph.edge_count == 6

    def test_comments_skipped(self, snap_file):
        graph = load_snap_edgelist(snap_file)
        assert graph.name == "web-sample"

    def test_max_vertices_truncates(self, snap_file):
        graph = load_snap_edgelist(snap_file, max_vertices=3)
        assert graph.vertex_count == 3
        # only edges among the first 3 distinct ids survive
        assert graph.edge_count == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njust-one-token\n")
        with pytest.raises(GraphError):
            load_snap_edgelist(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphError):
            load_snap_edgelist(path)


class TestAssignSyntheticLabels:
    def test_labels_and_schema(self, snap_file):
        graph = load_snap_edgelist(snap_file)
        labeled, schema = assign_synthetic_labels(
            graph, label_count=10, labels_per_vertex=2, seed=1
        )
        validate_graph(labeled, schema)
        for data in labeled.vertices():
            assert sum(len(v) for v in data.labels.values()) == 2
        # structure untouched
        assert labeled.edge_count == graph.edge_count

    def test_deterministic(self, snap_file):
        graph = load_snap_edgelist(snap_file)
        a, _ = assign_synthetic_labels(graph, label_count=10, seed=3)
        b, _ = assign_synthetic_labels(graph, label_count=10, seed=3)
        assert a.structure_equal(b)

    def test_full_pipeline_on_loaded_graph(self, snap_file):
        from repro import PrivacyPreservingSystem, SystemConfig
        from repro.matching import find_subgraph_matches, match_key
        from repro.workloads import random_walk_query

        graph = load_snap_edgelist(snap_file)
        labeled, schema = assign_synthetic_labels(graph, label_count=6, seed=2)
        system = PrivacyPreservingSystem.setup(labeled, schema, SystemConfig(k=2))
        query = random_walk_query(labeled, 2, seed=1)
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, labeled)}
        assert {match_key(m) for m in outcome.matches} == oracle
