"""Unit tests for cost-model-driven query decomposition."""

import pytest

from repro.anonymize import estimator_from_outsourced
from repro.cloud import decompose_query, estimate_all_stars
from repro.exceptions import QueryError
from repro.graph import AttributedGraph


@pytest.fixture
def estimator(figure1_pipeline):
    pipe = figure1_pipeline
    return estimator_from_outsourced(
        pipe.outsourced.block_vertices, pipe.outsourced.graph, pipe.transform.k
    )


class TestDecomposeQuery:
    def test_covers_every_edge(self, figure1_pipeline, estimator):
        decomposition = decompose_query(figure1_pipeline.qo, estimator)
        assert decomposition.covers(figure1_pipeline.qo)

    def test_star_roots_form_a_vertex_cover(self, figure1_pipeline, estimator):
        decomposition = decompose_query(figure1_pipeline.qo, estimator)
        roots = {star.center for star in decomposition.stars}
        for u, v in figure1_pipeline.qo.edges():
            assert u in roots or v in roots

    def test_figure6_shape(self, figure1_pipeline, estimator):
        """The paper decomposes Qo into the two person-rooted stars."""
        decomposition = decompose_query(figure1_pipeline.qo, estimator)
        # 2 stars suffice for the 4-edge path query; the optimum never
        # needs more than 2 roots here
        assert len(decomposition.stars) <= 3
        assert decomposition.covers(figure1_pipeline.qo)

    def test_estimates_attached(self, figure1_pipeline, estimator):
        decomposition = decompose_query(figure1_pipeline.qo, estimator)
        for star in decomposition.stars:
            assert star.center in decomposition.estimated_sizes

    def test_single_vertex_query(self, estimator):
        query = AttributedGraph()
        query.add_vertex(0, "person")
        decomposition = decompose_query(query, estimator)
        assert len(decomposition.stars) == 1
        assert decomposition.stars[0].center == 0
        assert decomposition.stars[0].leaves == ()

    def test_empty_query_rejected(self, estimator):
        with pytest.raises(QueryError):
            decompose_query(AttributedGraph(), estimator)

    def test_multiple_isolated_vertices_rejected(self, estimator):
        query = AttributedGraph()
        query.add_vertex(0, "person")
        query.add_vertex(1, "person")
        with pytest.raises(QueryError):
            decompose_query(query, estimator)


class TestEstimateAllStars:
    def test_every_non_isolated_vertex_estimated(self, figure1_pipeline, estimator):
        estimates = estimate_all_stars(figure1_pipeline.qo, estimator)
        assert set(estimates) == set(figure1_pipeline.qo.vertex_ids())
        assert all(value >= 0 for value in estimates.values())
