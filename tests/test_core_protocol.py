"""Unit tests for the wire protocol and network accounting."""

import pytest

from repro.core import (
    NetworkChannel,
    decode_answer,
    decode_query,
    decode_upload,
    encode_answer,
    encode_query,
    encode_upload,
)
from repro.exceptions import ProtocolError


class TestChannel:
    def test_transmission_time_model(self):
        channel = NetworkChannel(bandwidth_bytes_per_sec=1000, latency_seconds=0.5)
        seconds = channel.transmit("query", b"x" * 500)
        assert seconds == pytest.approx(0.5 + 0.5)

    def test_totals_by_direction(self):
        channel = NetworkChannel()
        channel.transmit("query", b"abc")
        channel.transmit("answer", b"defgh")
        assert channel.total_bytes("query") == 3
        assert channel.total_bytes("answer") == 5
        assert channel.total_bytes() == 8
        assert channel.total_seconds() > 0

    def test_reset(self):
        channel = NetworkChannel()
        channel.transmit("query", b"abc")
        channel.reset()
        assert channel.total_bytes() == 0


class TestUploadMessage:
    def test_round_trip(self, figure1_pipeline):
        pipe = figure1_pipeline
        payload = encode_upload(pipe.outsourced.graph, pipe.transform.avt)
        graph, avt = decode_upload(payload)
        assert graph.structure_equal(pipe.outsourced.graph)
        assert list(avt.rows()) == list(pipe.transform.avt.rows())

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_upload(b'{"nope": 1}')


class TestQueryMessage:
    def test_round_trip(self, figure1_pipeline):
        payload = encode_query(figure1_pipeline.qo)
        assert decode_query(payload).structure_equal(figure1_pipeline.qo)

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query(b"not json")


class TestAnswerMessage:
    def test_round_trip(self):
        matches = [{0: 5, 1: 7}, {0: 6, 1: 8}]
        payload = encode_answer(matches, [0, 1], expanded=False)
        decoded, expanded = decode_answer(payload)
        assert decoded == matches
        assert expanded is False

    def test_expanded_flag_survives(self):
        payload = encode_answer([], [0], expanded=True)
        _, expanded = decode_answer(payload)
        assert expanded is True

    def test_answer_size_grows_with_matches(self):
        small = encode_answer([{0: 1}], [0], expanded=False)
        big = encode_answer([{0: i} for i in range(100)], [0], expanded=False)
        assert len(big) > len(small)

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_answer(b'{"rows": "oops"}')
