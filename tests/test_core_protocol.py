"""Unit tests for the wire protocol and network accounting."""

import pytest

from repro.core import (
    NetworkChannel,
    decode_answer,
    decode_answer_batch,
    decode_query,
    decode_query_batch,
    decode_upload,
    encode_answer,
    encode_answer_batch,
    encode_query,
    encode_query_batch,
    encode_upload,
)
from repro.exceptions import ProtocolError
from repro.graph import AttributedGraph


class TestChannel:
    def test_transmission_time_model(self):
        channel = NetworkChannel(bandwidth_bytes_per_sec=1000, latency_seconds=0.5)
        seconds = channel.transmit("query", b"x" * 500)
        assert seconds == pytest.approx(0.5 + 0.5)

    def test_totals_by_direction(self):
        channel = NetworkChannel()
        channel.transmit("query", b"abc")
        channel.transmit("answer", b"defgh")
        assert channel.total_bytes("query") == 3
        assert channel.total_bytes("answer") == 5
        assert channel.total_bytes() == 8
        assert channel.total_seconds() > 0

    def test_reset(self):
        channel = NetworkChannel()
        channel.transmit("query", b"abc")
        channel.reset()
        assert channel.total_bytes() == 0


class TestUploadMessage:
    def test_round_trip(self, figure1_pipeline):
        pipe = figure1_pipeline
        payload = encode_upload(pipe.outsourced.graph, pipe.transform.avt)
        graph, avt = decode_upload(payload)
        assert graph.structure_equal(pipe.outsourced.graph)
        assert list(avt.rows()) == list(pipe.transform.avt.rows())

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_upload(b'{"nope": 1}')


class TestQueryMessage:
    def test_round_trip(self, figure1_pipeline):
        payload = encode_query(figure1_pipeline.qo)
        assert decode_query(payload).structure_equal(figure1_pipeline.qo)

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query(b"not json")


def unicode_query() -> AttributedGraph:
    """A query whose labels exercise non-ASCII JSON round-tripping."""
    query = AttributedGraph()
    query.add_vertex(0, "person", labels={"name": ["Ωμέγα", "naïve"]})
    query.add_vertex(1, "café", labels={"città": ["東京", "emoji ✓"]})
    query.add_edge(0, 1)
    return query


class TestQueryMessageEdgeCases:
    def test_empty_query_round_trip(self):
        empty = AttributedGraph()
        decoded = decode_query(encode_query(empty))
        assert decoded.vertex_count == 0
        assert decoded.edge_count == 0

    def test_unicode_labels_round_trip(self):
        query = unicode_query()
        decoded = decode_query(encode_query(query))
        assert decoded.structure_equal(query)
        assert decoded.vertex(0).labels == query.vertex(0).labels
        assert decoded.vertex(1).labels == query.vertex(1).labels
        assert decoded.vertex(1).vertex_type == "café"


class TestBatchMessages:
    """Multi-query payloads: the wire framing of `query_batch`."""

    def test_query_batch_round_trip(self, figure1_pipeline):
        queries = [figure1_pipeline.qo, unicode_query(), AttributedGraph()]
        decoded = decode_query_batch(encode_query_batch(queries))
        assert len(decoded) == 3
        for original, back in zip(queries, decoded):
            assert back.structure_equal(original)

    def test_empty_batch_round_trip(self):
        assert decode_query_batch(encode_query_batch([])) == []

    def test_answer_batch_round_trip(self):
        answers = [
            ([{0: 5, 1: 7}, {0: 6, 1: 8}], [0, 1], False),
            ([], [0], True),
            ([{0: 1, 1: 2, 2: 3}], [0, 1, 2], True),
        ]
        decoded = decode_answer_batch(encode_answer_batch(answers))
        assert decoded == [
            ([{0: 5, 1: 7}, {0: 6, 1: 8}], False),
            ([], True),
            ([{0: 1, 1: 2, 2: 3}], True),
        ]

    def test_batch_under_load_round_trip(self, figure1_pipeline):
        """A large multi-query payload survives encode/decode intact."""
        queries = [figure1_pipeline.qo, unicode_query()] * 16
        decoded = decode_query_batch(encode_query_batch(queries))
        assert len(decoded) == 32
        assert all(
            back.structure_equal(original)
            for original, back in zip(queries, decoded)
        )

    def test_malformed_query_batch_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query_batch(b"not json")
        with pytest.raises(ProtocolError):
            decode_query_batch(b'{"nope": []}')
        with pytest.raises(ProtocolError):
            decode_query_batch(b'{"queries": 3}')

    def test_malformed_answer_batch_rejected(self):
        with pytest.raises(ProtocolError):
            decode_answer_batch(b'{"answers": "oops"}')
        with pytest.raises(ProtocolError):
            decode_answer_batch(b'{"answers": [{"rows": []}]}')


class TestAnswerMessage:
    def test_round_trip(self):
        matches = [{0: 5, 1: 7}, {0: 6, 1: 8}]
        payload = encode_answer(matches, [0, 1], expanded=False)
        decoded, expanded = decode_answer(payload)
        assert decoded == matches
        assert expanded is False

    def test_expanded_flag_survives(self):
        payload = encode_answer([], [0], expanded=True)
        _, expanded = decode_answer(payload)
        assert expanded is True

    def test_answer_size_grows_with_matches(self):
        small = encode_answer([{0: 1}], [0], expanded=False)
        big = encode_answer([{0: i} for i in range(100)], [0], expanded=False)
        assert len(big) > len(small)

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_answer(b'{"rows": "oops"}')
