"""Unit tests for Algorithm 1 (star matching over Go)."""

import pytest

from repro.cloud import CloudIndex, match_all_stars, match_star
from repro.matching import (
    Star,
    find_subgraph_matches,
    match_key,
    star_as_graph,
    star_of,
)


@pytest.fixture
def cloud_setup(figure1_pipeline):
    pipe = figure1_pipeline
    index = CloudIndex.build(pipe.outsourced.graph, pipe.outsourced.block_vertices)
    return pipe, index


class TestMatchStar:
    def test_agrees_with_reference_matcher(self, cloud_setup):
        """Algorithm 1 == VF2 restricted to centers in B1."""
        pipe, index = cloud_setup
        block = set(pipe.outsourced.block_vertices)
        for center in pipe.qo.vertex_ids():
            star = star_of(pipe.qo, center)
            got = {match_key(m) for m in match_star(pipe.qo, star, index, pipe.outsourced.graph)}
            reference = {
                match_key(m)
                for m in find_subgraph_matches(
                    star_as_graph(pipe.qo, star),
                    pipe.outsourced.graph,
                    candidate_filter=lambda q, v, c=center: q != c or v in block,
                )
            }
            assert got == reference

    def test_center_always_in_block(self, cloud_setup):
        pipe, index = cloud_setup
        block = set(pipe.outsourced.block_vertices)
        for center in pipe.qo.vertex_ids():
            star = star_of(pipe.qo, center)
            for match in match_star(pipe.qo, star, index, pipe.outsourced.graph):
                assert match[center] in block

    def test_matches_are_injective_and_edge_respecting(self, cloud_setup):
        pipe, index = cloud_setup
        star = star_of(pipe.qo, 1)
        for match in match_star(pipe.qo, star, index, pipe.outsourced.graph):
            assert len(set(match.values())) == len(match)
            for leaf in star.leaves:
                assert pipe.outsourced.graph.has_edge(match[1], match[leaf])

    def test_unmatchable_star_returns_empty(self, cloud_setup):
        pipe, index = cloud_setup
        star = Star(center=0, leaves=(1,))
        from repro.graph import AttributedGraph

        query = AttributedGraph()
        query.add_vertex(0, "no-such-type")
        query.add_vertex(1, "person")
        query.add_edge(0, 1)
        assert match_star(query, star, index, pipe.outsourced.graph) == []

    def test_degree_pruning(self, cloud_setup):
        """A star with more leaves than any data degree matches nothing."""
        pipe, index = cloud_setup
        from repro.graph import AttributedGraph

        max_degree = max(
            pipe.outsourced.graph.degree(v)
            for v in pipe.outsourced.block_vertices
        )
        query = AttributedGraph()
        query.add_vertex(0, "person")
        for leaf in range(1, max_degree + 2):
            query.add_vertex(leaf, "person")
            query.add_edge(0, leaf)
        star = star_of(query, 0)
        assert match_star(query, star, index, pipe.outsourced.graph) == []


class TestMatchAllStars:
    def test_stats_track_sizes(self, cloud_setup):
        pipe, index = cloud_setup
        stars = [star_of(pipe.qo, 1), star_of(pipe.qo, 4)]
        results, stats = match_all_stars(pipe.qo, stars, index, pipe.outsourced.graph)
        assert set(results) == {1, 4}
        assert stats.result_sizes == {c: len(results[c]) for c in results}
        assert stats.total_results == sum(len(m) for m in results.values())
        assert stats.seconds >= 0
