"""Unit tests for Algorithm 2 (result join producing Rin)."""

import pytest

from repro.cloud import (
    CloudIndex,
    decompose_query,
    expand_star_matches,
    join_star_matches,
    match_all_stars,
)
from repro.anonymize import estimator_from_outsourced
from repro.exceptions import QueryError
from repro.matching import find_subgraph_matches, match_key, star_of


@pytest.fixture
def joined(figure1_pipeline):
    pipe = figure1_pipeline
    index = CloudIndex.build(pipe.outsourced.graph, pipe.outsourced.block_vertices)
    estimator = estimator_from_outsourced(
        pipe.outsourced.block_vertices, pipe.outsourced.graph, pipe.transform.k
    )
    decomposition = decompose_query(pipe.qo, estimator)
    star_matches, _ = match_all_stars(
        pipe.qo, decomposition.stars, index, pipe.outsourced.graph
    )
    rin, stats = join_star_matches(decomposition.stars, star_matches, pipe.transform.avt)
    return pipe, decomposition, rin, stats


class TestExpandStarMatches:
    def test_expansion_matches_definition(self, figure1_pipeline):
        pipe = figure1_pipeline
        avt = pipe.transform.avt
        matches = [{0: avt.first_block()[0]}]
        expanded = expand_star_matches(matches, avt)
        assert len(expanded) == avt.k
        assert {m[0] for m in expanded} == set(avt.symmetric_group(avt.first_block()[0]))


class TestJoinProducesRin:
    def test_rin_expands_to_full_candidate_set(self, joined):
        """Rin ∪ F_m(Rin) must equal R(Qo, Gk) computed directly."""
        pipe, _, rin, _ = joined
        avt = pipe.transform.avt
        expanded = {match_key(m) for m in avt.expand_matches(rin)}
        direct = {
            match_key(m) for m in find_subgraph_matches(pipe.qo, pipe.transform.gk)
        }
        assert expanded == direct

    def test_rin_is_anchored_in_block1(self, joined):
        pipe, _, rin, stats = joined
        anchor = stats.anchor_center
        block = set(pipe.transform.avt.first_block())
        assert anchor is not None
        for match in rin:
            assert match[anchor] in block

    def test_rin_matches_are_complete_assignments(self, joined):
        pipe, _, rin, _ = joined
        query_vertices = set(pipe.qo.vertex_ids())
        for match in rin:
            assert set(match) == query_vertices
            assert len(set(match.values())) == len(match)

    def test_stats_recorded(self, joined):
        _, decomposition, rin, stats = joined
        assert stats.rin_size == len(rin)
        assert len(stats.intermediate_sizes) == len(decomposition.stars)


class TestJoinOrdering:
    def test_anchor_is_smallest_result_set(self, figure1_pipeline):
        """Algorithm 2 line 1: the anchor star has minimum |R(S)|."""
        from repro.matching import Star

        avt = figure1_pipeline.transform.avt
        stars = [Star(center=0, leaves=(1,)), Star(center=2, leaves=(1,))]
        star_matches = {
            0: [{0: 10, 1: 11}, {0: 12, 1: 13}, {0: 14, 1: 15}],
            2: [{2: 20, 1: 11}],
        }
        _, stats = join_star_matches(stars, star_matches, avt, expand=False)
        assert stats.anchor_center == 2

    def test_overlapping_star_preferred(self, figure1_pipeline):
        """Algorithm 2 line 4: the next star overlaps the covered part."""
        from repro.matching import Star

        avt = figure1_pipeline.transform.avt
        # chain 0-1-2-3: stars at 0, 2 cover it; star at 0 = {0,1},
        # star at 2 = {1,2,3}.  A third star at 3 = {2,3} does not
        # overlap star 0 but is smaller than star 2.
        stars = [
            Star(center=0, leaves=(1,)),
            Star(center=2, leaves=(1, 3)),
            Star(center=3, leaves=(2,)),
        ]
        star_matches = {
            0: [{0: 100, 1: 101}, {0: 110, 1: 111}],
            2: [{2: 102, 1: 101, 3: 103}, {2: 104, 1: 105, 3: 106}],
            3: [{3: 103, 2: 102}],
        }
        rin, stats = join_star_matches(stars, star_matches, avt, expand=False)
        # anchor: star 3 has the global minimum |R| = 1
        assert stats.anchor_center == 3
        # then star 2 (overlapping via {2,3}) joins before star 0,
        # which does not overlap {2,3} yet despite equal size
        assert rin == [{0: 100, 1: 101, 2: 102, 3: 103}]


class TestJoinEdgeCases:
    def test_empty_decomposition_rejected(self, figure1_pipeline):
        with pytest.raises(QueryError):
            join_star_matches([], {}, figure1_pipeline.transform.avt)

    def test_single_star_passthrough(self, figure1_pipeline):
        pipe = figure1_pipeline
        star = star_of(pipe.qo, 1)
        matches = [{1: 0, 0: 4, 2: 6}]
        rin, stats = join_star_matches([star], {1: matches}, pipe.transform.avt)
        assert rin == matches
        assert stats.anchor_center == 1

    def test_join_eliminates_duplicate_data_vertices(self, figure1_pipeline):
        """Two stars whose non-shared vertices collide must be dropped."""
        pipe = figure1_pipeline
        from repro.matching import Star

        left = Star(center=0, leaves=(1,))
        right = Star(center=2, leaves=(1,))
        star_matches = {
            0: [{0: 10, 1: 11}],
            2: [{2: 10, 1: 11}],  # 2 maps to 10 = duplicate of 0's image
        }
        # use a trivial AVT containing the ids so expansion is harmless
        from repro.kauto import AlignmentVertexTable

        avt = AlignmentVertexTable([[10, 20], [11, 21], [12, 22]])
        rin, _ = join_star_matches([left, right], star_matches, avt, expand=False)
        assert rin == []

    def test_empty_star_result_short_circuits(self, figure1_pipeline):
        pipe = figure1_pipeline
        from repro.matching import Star

        stars = [Star(center=0, leaves=(1,)), Star(center=1, leaves=(0,))]
        star_matches = {0: [], 1: [{1: 5, 0: 6}]}
        rin, stats = join_star_matches(
            stars, star_matches, figure1_pipeline.transform.avt, expand=False
        )
        assert rin == []
