"""Integration tests: k-automorphism construction and verification."""

import pytest

from repro.exceptions import PartitionError, VerificationError
from repro.graph import assert_supergraph
from repro.kauto import (
    build_k_automorphic_graph,
    identification_probability,
    verify_blocks_isomorphic,
    verify_k_automorphism,
)


class TestBuilderOnRunningExample:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_gk_is_k_automorphic(self, figure1_graph, k):
        result = build_k_automorphic_graph(figure1_graph, k, seed=1)
        verify_k_automorphism(result.gk, result.avt)
        verify_blocks_isomorphic(result.gk, result.avt)

    @pytest.mark.parametrize("k", [2, 3])
    def test_g_is_subgraph_of_gk(self, figure1_graph, k):
        result = build_k_automorphic_graph(figure1_graph, k, seed=1)
        assert_supergraph(figure1_graph, result.gk)

    def test_block_sizes_equal(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 3, seed=1)
        sizes = {len(result.avt.block(b)) for b in range(3)}
        assert len(sizes) == 1
        assert result.gk.vertex_count == 3 * result.avt.row_count

    def test_noise_accounting(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        assert result.noise_edge_count == (
            result.gk.edge_count - figure1_graph.edge_count
        )
        assert result.noise_vertex_count == (
            result.gk.vertex_count - figure1_graph.vertex_count
        )
        # all noise edge lists refer to real Gk edges
        for u, v in result.alignment_noise_edges + result.crossing_noise_edges:
            assert result.gk.has_edge(u, v)

    def test_k_below_two_rejected(self, figure1_graph):
        with pytest.raises(PartitionError):
            build_k_automorphic_graph(figure1_graph, 1)

    def test_rows_are_type_homogeneous(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        for row in result.avt.rows():
            types = {result.gk.vertex(v).vertex_type for v in row}
            assert len(types) == 1

    def test_rows_share_label_sets(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        for row in result.avt.rows():
            label_sets = {
                tuple(sorted(result.gk.vertex(v).labels.items()))
                for v in row
            }
            assert len(label_sets) == 1


class TestBuilderOnRandomGraphs:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_random_graph_transform(self, small_graph, k):
        result = build_k_automorphic_graph(small_graph, k, seed=3)
        verify_k_automorphism(result.gk, result.avt)
        assert_supergraph(small_graph, result.gk)

    def test_noise_edges_grow_with_k(self, small_graph):
        """Figure 11's shape: noise edges increase roughly linearly in k."""
        noise = [
            build_k_automorphic_graph(small_graph, k, seed=3).noise_edge_count
            for k in (2, 3, 4, 5)
        ]
        assert noise == sorted(noise)
        assert noise[-1] > noise[0]

    def test_custom_partitioner_is_used(self, small_graph):
        calls = []

        def stub_partitioner(graph, k):
            calls.append(k)
            vertices = sorted(graph.vertex_ids())
            chunk = (len(vertices) + k - 1) // k
            return [vertices[i * chunk : (i + 1) * chunk] for i in range(k)]

        result = build_k_automorphic_graph(
            small_graph, 2, partitioner=stub_partitioner
        )
        assert calls == [2]
        verify_k_automorphism(result.gk, result.avt)

    def test_bad_partitioner_rejected(self, small_graph):
        def broken(graph, k):
            return [[], sorted(graph.vertex_ids())[1:]]  # drops a vertex

        with pytest.raises(PartitionError):
            build_k_automorphic_graph(small_graph, 2, partitioner=broken)


class TestVerifierCatchesViolations:
    def test_missing_edge_image_detected(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        gk = result.gk
        # remove one noise edge's image to break the symmetry
        u, v = result.alignment_noise_edges[0]
        gk.remove_edge(u, v)
        with pytest.raises(VerificationError):
            verify_k_automorphism(gk, result.avt)

    def test_label_divergence_detected(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        row = next(iter(result.avt.rows()))
        result.gk.set_vertex_labels(row[0], {"rogue": ["label"]})
        with pytest.raises(VerificationError):
            verify_k_automorphism(result.gk, result.avt)

    def test_avt_coverage_mismatch_detected(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 2, seed=1)
        result.gk.add_vertex(99_999, "person")
        with pytest.raises(VerificationError):
            verify_k_automorphism(result.gk, result.avt)


class TestPrivacyBound:
    def test_identification_probability(self, figure1_graph):
        result = build_k_automorphic_graph(figure1_graph, 4, seed=1)
        assert identification_probability(result.avt) == 0.25
