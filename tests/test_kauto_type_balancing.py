"""Tests for the type-balancing partition post-pass."""

import pytest

from repro.graph import make_schema, random_attributed_graph
from repro.kauto import (
    build_k_automorphic_graph,
    partition_graph,
    validate_partition,
    verify_k_automorphism,
)
from repro.kauto.partition import balance_types


def type_counts(graph, blocks):
    counts = []
    for block in blocks:
        per_type = {}
        for vid in block:
            t = graph.vertex(vid).vertex_type
            per_type[t] = per_type.get(t, 0) + 1
        counts.append(per_type)
    return counts


class TestBalanceTypes:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_per_type_counts_within_one(self, small_graph, k):
        blocks = partition_graph(small_graph, k, seed=2)
        balanced = balance_types(small_graph, blocks)
        validate_partition(small_graph, balanced, k)
        counts = type_counts(small_graph, balanced)
        types = {t for c in counts for t in c}
        for t in types:
            values = [c.get(t, 0) for c in counts]
            assert max(values) - min(values) <= 1

    def test_k1_passthrough(self, small_graph):
        blocks = [sorted(small_graph.vertex_ids())]
        assert balance_types(small_graph, blocks) == blocks

    def test_cut_stays_reasonable(self, medium_graph):
        from repro.kauto import cut_size

        blocks = partition_graph(medium_graph, 3, seed=2)
        before = cut_size(medium_graph, blocks)
        balanced = balance_types(medium_graph, blocks)
        after = cut_size(medium_graph, balanced)
        # moving a few low-connectivity vertices must not explode the cut
        assert after <= before + 2 * medium_graph.average_degree() * 30

    def test_divisible_types_need_zero_padding(self):
        schema = make_schema(3, 2, 6)
        graph = random_attributed_graph(schema, 300, 3, seed=7)
        result = build_k_automorphic_graph(graph, 2, seed=3)
        # 300 vertices, 3 types: counts may not divide evenly by 2, but
        # padding is at most (k-1) per type
        assert result.noise_vertex_count <= (2 - 1) * 3

    def test_disabled_balancing_matches_legacy(self):
        schema = make_schema(3, 2, 6)
        graph = random_attributed_graph(schema, 120, 2, seed=9)
        legacy = build_k_automorphic_graph(graph, 3, seed=1, type_balancing=False)
        balanced = build_k_automorphic_graph(graph, 3, seed=1, type_balancing=True)
        verify_k_automorphism(legacy.gk, legacy.avt)
        verify_k_automorphism(balanced.gk, balanced.avt)
        assert balanced.noise_vertex_count <= legacy.noise_vertex_count

    def test_pipeline_exact_with_balancing(self, small_graph, small_schema):
        from repro import PrivacyPreservingSystem, SystemConfig
        from repro.matching import find_subgraph_matches, match_key
        from repro.workloads import random_walk_query

        query = random_walk_query(small_graph, 3, seed=4)
        system = PrivacyPreservingSystem.setup(
            small_graph, small_schema, SystemConfig(k=3)
        )
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, small_graph)}
        assert {match_key(m) for m in outcome.matches} == oracle
