"""Robustness of the client against a misbehaving cloud.

The paper assumes an honest-but-curious cloud.  These tests check the
precise integrity property that assumption buys and what survives
without it:

* **soundness without trust** — whatever the cloud returns (bogus
  matches, tampered ids, duplicated rows), the client's filter never
  emits anything outside the true ``R(Q, G)``;
* **completeness needs honesty** — a cloud that *omits* results causes
  silent under-reporting; the client cannot detect omission (this is
  the documented limit of the threat model).
"""

import random

import pytest

from repro import PrivacyPreservingSystem, SystemConfig
from repro.graph import example_query, example_social_network
from repro.matching import find_subgraph_matches, match_key


@pytest.fixture(scope="module")
def deployment():
    graph, schema = example_social_network()
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    query = example_query()
    oracle = {match_key(m) for m in find_subgraph_matches(query, graph)}
    answer = system.cloud.answer(system.client.prepare_query(query))
    return graph, system, query, oracle, answer


def client_output(system, query, matches, expanded=False):
    outcome = system.client.process_answer(query, matches, expanded)
    return {match_key(m) for m in outcome.matches}


class TestSoundnessAgainstTampering:
    def test_injected_garbage_matches_filtered(self, deployment):
        graph, system, query, oracle, answer = deployment
        rng = random.Random(0)
        bogus = []
        ids = sorted(system.cloud.graph.vertex_ids())
        for _ in range(50):
            bogus.append({q: rng.choice(ids) for q in query.vertex_ids()})
        tampered = answer.matches + bogus
        assert client_output(system, query, tampered) == oracle

    def test_swapped_assignments_filtered(self, deployment):
        graph, system, query, oracle, answer = deployment
        tampered = []
        for match in answer.matches:
            twisted = dict(match)
            keys = sorted(twisted)
            twisted[keys[0]], twisted[keys[1]] = twisted[keys[1]], twisted[keys[0]]
            tampered.append(twisted)
        # swapping roles breaks type/edge constraints -> nothing extra
        assert client_output(system, query, answer.matches + tampered) == oracle

    def test_duplicated_rows_do_not_duplicate_results(self, deployment):
        graph, system, query, oracle, answer = deployment
        outcome = system.client.process_answer(
            query, answer.matches * 3, already_expanded=False
        )
        assert {match_key(m) for m in outcome.matches} == oracle
        assert len(outcome.matches) == len(oracle)

    def test_out_of_range_ids_filtered(self, deployment):
        graph, system, query, oracle, answer = deployment
        bogus = [{q: 10_000 + q for q in query.vertex_ids()}]
        assert client_output(system, query, answer.matches + bogus) == oracle

    def test_fully_adversarial_answer_yields_subset(self, deployment):
        """Even a completely fabricated answer can only shrink results."""
        graph, system, query, oracle, _ = deployment
        rng = random.Random(7)
        fabricated = [
            {q: rng.randrange(0, 20) for q in query.vertex_ids()} for _ in range(200)
        ]
        assert client_output(system, query, fabricated) <= oracle


class TestCompletenessNeedsHonesty:
    def test_omission_is_undetectable(self, deployment):
        graph, system, query, oracle, answer = deployment
        partial = answer.matches[:-1] if answer.matches else []
        result = client_output(system, query, partial)
        # the client returns a subset without error — the documented
        # limit of honest-but-curious
        assert result <= oracle
        if answer.matches:
            assert len(result) <= len(oracle)
