"""End-to-end behaviour on awkward inputs.

Disconnected data graphs, isolated vertices, unicode labels, single
edges — the pipeline must stay exact (or fail loudly) on all of them.
"""


from repro import PrivacyPreservingSystem, SystemConfig
from repro.graph import AttributedGraph, GraphSchema, schema_from_graph
from repro.matching import find_subgraph_matches, match_key


def run_pipeline(graph, schema, query, k=2):
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=k))
    outcome = system.query(query)
    oracle = {match_key(m) for m in find_subgraph_matches(query, graph)}
    assert {match_key(m) for m in outcome.matches} == oracle
    return outcome


class TestDisconnectedDataGraph:
    def build(self):
        graph = AttributedGraph("islands")
        for vid in range(4):
            graph.add_vertex(vid, "t", {"a": [f"l{vid % 2}"]})
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)  # second component
        # an isolated vertex too
        graph.add_vertex(9, "t", {"a": ["l0"]})
        return graph

    def test_two_components_and_an_isolated_vertex(self):
        graph = self.build()
        schema = schema_from_graph(graph)
        query = AttributedGraph("q")
        query.add_vertex(0, "t", {"a": ["l0"]})
        query.add_vertex(1, "t", {"a": ["l1"]})
        query.add_edge(0, 1)
        outcome = run_pipeline(graph, schema, query, k=2)
        assert len(outcome.matches) == 2  # one per component

    def test_single_vertex_query_counts_isolated(self):
        graph = self.build()
        schema = schema_from_graph(graph)
        query = AttributedGraph("q")
        query.add_vertex(0, "t", {"a": ["l0"]})
        outcome = run_pipeline(graph, schema, query, k=2)
        # vertices 0, 2 and isolated 9 carry l0
        assert len(outcome.matches) == 3


class TestMinimalGraphs:
    def test_single_edge_graph(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "t", {"a": ["x"]})
        graph.add_vertex(1, "t", {"a": ["y"]})
        graph.add_edge(0, 1)
        schema = schema_from_graph(graph)
        query = graph.copy("q")
        run_pipeline(graph, schema, query, k=2)

    def test_high_k_on_small_graph(self):
        graph = AttributedGraph()
        for vid in range(3):
            graph.add_vertex(vid, "t", {"a": ["x"]})
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        schema = schema_from_graph(graph)
        query = AttributedGraph("q")
        query.add_vertex(0, "t", {"a": ["x"]})
        query.add_vertex(1, "t", {"a": ["x"]})
        query.add_edge(0, 1)
        # k exceeds |V|/2: heavy padding, still exact
        run_pipeline(graph, schema, query, k=4)


class TestUnicodeLabels:
    def test_unicode_through_the_whole_pipeline(self):
        graph = AttributedGraph("unicode")
        graph.add_vertex(0, "人", {"名前": ["太郎", "emoji🎓"]})
        graph.add_vertex(1, "人", {"名前": ["花子"]})
        graph.add_vertex(2, "会社", {"種類": ["ソフトウェア"]})
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        graph.add_edge(0, 1)
        schema = GraphSchema.from_dict(
            {
                "人": {"名前": ["太郎", "花子", "emoji🎓", "次郎"]},
                "会社": {"種類": ["ソフトウェア", "インターネット"]},
            }
        )
        query = AttributedGraph("q")
        query.add_vertex(0, "人", {"名前": ["太郎"]})
        query.add_vertex(1, "会社")
        query.add_edge(0, 1)
        outcome = run_pipeline(graph, schema, query, k=2)
        assert len(outcome.matches) == 1

    def test_unicode_labels_stay_private(self):
        from repro.core.protocol import encode_upload

        graph = AttributedGraph("unicode")
        graph.add_vertex(0, "人", {"名前": ["太郎"]})
        graph.add_vertex(1, "人", {"名前": ["花子"]})
        graph.add_edge(0, 1)
        schema = GraphSchema.from_dict({"人": {"名前": ["太郎", "花子"]}})
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        payload = encode_upload(
            system.published.upload_graph, system.published.transform.avt
        ).decode("utf-8")
        assert "太郎" not in payload
        assert "花子" not in payload
