"""Tests for the bitset-accelerated matcher (equivalence + speed sanity)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    AttributedGraph,
    cycle_graph,
    grid_graph,
    make_schema,
    random_attributed_graph,
)
from repro.matching import find_subgraph_matches, match_key
from repro.matching.bitset import BitsetMatcher, find_subgraph_matches_bitset
from repro.workloads import random_walk_query


def keys(matches):
    return {match_key(m) for m in matches}


class TestBasicEquivalence:
    def test_triangle(self, triangle):
        assert len(find_subgraph_matches_bitset(triangle, triangle)) == 6

    def test_path_in_grid(self):
        query = AttributedGraph()
        for vid in range(3):
            query.add_vertex(vid, "t0")
        query.add_edge(0, 1)
        query.add_edge(1, 2)
        data = grid_graph(3, 3)
        assert keys(find_subgraph_matches_bitset(query, data)) == keys(
            find_subgraph_matches(query, data)
        )

    def test_labels_respected(self):
        data = AttributedGraph()
        data.add_vertex(0, "t", {"a": ["x", "y"]})
        data.add_vertex(1, "t", {"a": ["x"]})
        data.add_edge(0, 1)
        query = AttributedGraph()
        query.add_vertex(0, "t", {"a": ["y"]})
        query.add_vertex(1, "t")
        query.add_edge(0, 1)
        matches = find_subgraph_matches_bitset(query, data)
        assert len(matches) == 1 and matches[0][0] == 0

    def test_limit(self, triangle):
        assert len(find_subgraph_matches_bitset(triangle, triangle, limit=2)) == 2

    def test_empty_query_rejected(self, triangle):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            find_subgraph_matches_bitset(AttributedGraph(), triangle)

    def test_no_candidates_short_circuits(self, triangle):
        query = AttributedGraph()
        query.add_vertex(0, "other-type")
        assert find_subgraph_matches_bitset(query, triangle) == []

    def test_matcher_reuse_across_queries(self):
        data = cycle_graph(8)
        matcher = BitsetMatcher(data)
        q2 = AttributedGraph()
        q2.add_vertex(0, "t0")
        q2.add_vertex(1, "t0")
        q2.add_edge(0, 1)
        assert matcher.count_matches(q2) == 16
        q3 = AttributedGraph()
        for vid in range(3):
            q3.add_vertex(vid, "t0")
        q3.add_edge(0, 1)
        q3.add_edge(1, 2)
        assert matcher.count_matches(q3) == 16


class TestEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 45),
        edges=st.integers(1, 5),
    )
    def test_equals_reference_matcher(self, seed, n, edges):
        schema = make_schema(2, 1, 4)
        data = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
        query = random_walk_query(data, edges, seed=seed + 1)
        assert keys(find_subgraph_matches_bitset(query, data)) == keys(
            find_subgraph_matches(query, data)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_unlabeled_random_graphs(self, seed):
        rng = random.Random(seed)
        data = AttributedGraph()
        n = rng.randint(6, 12)
        for vid in range(n):
            data.add_vertex(vid, "t")
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.35:
                    data.add_edge(u, v)
        query = cycle_graph(rng.choice([3, 4]), vertex_type="t")
        assert keys(find_subgraph_matches_bitset(query, data)) == keys(
            find_subgraph_matches(query, data)
        )


class TestSpeedSanity:
    def test_not_dramatically_slower_than_reference(self):
        """Rough guard: the bitset engine should not regress badly."""
        import time

        schema = make_schema(1, 1, 30)
        data = random_attributed_graph(
            schema, 400, edges_per_vertex=3, labels_per_vertex=2, seed=2
        )
        queries = [random_walk_query(data, 6, seed=s) for s in range(6)]

        started = time.perf_counter()
        reference = [keys(find_subgraph_matches(q, data)) for q in queries]
        reference_seconds = time.perf_counter() - started

        matcher = BitsetMatcher(data)
        started = time.perf_counter()
        fast = [keys(matcher.find_matches(q)) for q in queries]
        bitset_seconds = time.perf_counter() - started

        assert fast == reference
        assert bitset_seconds < 3 * reference_seconds + 0.05
