"""Structured event log: query ids, levels, deterministic sampling."""

import io
import json

import pytest

from repro.core.config import SystemConfig
from repro.core.options import QueryOptions
from repro.core.system import PrivacyPreservingSystem, QueryOutcome
from repro.graph.generators import example_query, example_social_network
from repro.obs import (
    EventLog,
    NULL_EVENTS,
    Observability,
    new_query_id,
)
from repro.obs.events import (
    DEBUG_SPANS,
    INFO_SPANS,
    _sampled,
    query_ids,
    read_events,
)
from repro.obs import names


def _demo_system(**config) -> PrivacyPreservingSystem:
    graph, schema = example_social_network()
    return PrivacyPreservingSystem.setup(
        graph, schema, SystemConfig(k=2, **config), obs=Observability()
    )


class TestQueryIds:
    def test_new_query_id_shape_and_uniqueness(self):
        ids = {new_query_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(qid.startswith("q-") and len(qid) == 14 for qid in ids)

    def test_outcome_carries_query_id_stamped_on_every_span(self):
        system = _demo_system()
        outcome = system.query(example_query())
        assert outcome.query_id.startswith("q-")
        assert outcome.trace is not None and len(outcome.trace) > 0
        assert all(
            span.query_id == outcome.query_id for span in outcome.trace
        )

    def test_distinct_queries_get_distinct_ids(self):
        system = _demo_system()
        first = system.query(example_query())
        second = system.query(example_query())
        assert first.query_id != second.query_id

    def test_query_id_round_trips_through_dicts(self):
        system = _demo_system()
        outcome = system.query(example_query())
        clone = QueryOutcome.from_dict(outcome.to_dict())
        assert clone.query_id == outcome.query_id

    def test_old_dicts_without_query_id_still_load(self):
        system = _demo_system()
        doc = system.query(example_query()).to_dict()
        doc.pop("query_id")
        assert QueryOutcome.from_dict(doc).query_id == ""

    def test_disabled_obs_leaves_query_id_empty(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2), obs=Observability.disabled()
        )
        outcome = system.query(example_query())
        assert outcome.query_id == ""
        assert outcome.trace is None


class TestSampling:
    def test_rate_bounds_are_absolute(self):
        assert _sampled("q-anything", 1.0)
        assert not _sampled("q-anything", 0.0)

    def test_deterministic_per_query_id(self):
        qid = new_query_id()
        decisions = {_sampled(qid, 0.5) for _ in range(10)}
        assert len(decisions) == 1

    def test_rate_roughly_respected(self):
        kept = sum(
            1 for _ in range(2000) if _sampled(new_query_id(), 0.25)
        )
        assert 350 < kept < 650  # ~500 expected

    def test_zero_rate_writes_nothing(self):
        stream = io.StringIO()
        log = EventLog(stream, sample_rate=0.0)
        system = _demo_system()
        system.obs.events = log
        outcome = system.query(example_query())
        assert outcome.matches  # the query itself still works
        assert stream.getvalue() == ""
        assert log.emitted == 0


class TestEventLog:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EventLog(io.StringIO(), level="verbose")
        with pytest.raises(ValueError):
            EventLog(io.StringIO(), sample_rate=1.5)

    def test_emit_writes_one_sorted_json_line(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.emit("serve", query_id="q-abc", port=123)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["event"] == "serve"
        assert doc["query_id"] == "q-abc"
        assert doc["port"] == 123
        assert doc["level"] == "info"
        assert "ts" in doc

    def test_info_level_hides_per_star_spans(self):
        assert names.CLOUD_STAR_MATCH in DEBUG_SPANS
        assert names.CLOUD_STAR_MATCH not in INFO_SPANS
        system = _demo_system()
        outcome = system.query(example_query())
        stream = io.StringIO()
        EventLog(stream, level="info").emit_query(
            outcome.trace, outcome.query_id
        )
        events = [json.loads(l) for l in stream.getvalue().splitlines()]
        span_names = {e["span"] for e in events if e["event"] == "span"}
        assert names.CLOUD_STAR_MATCH not in span_names
        assert names.CLOUD_JOIN in span_names

    def test_debug_level_includes_per_star_spans(self):
        system = _demo_system()
        outcome = system.query(example_query())
        stream = io.StringIO()
        EventLog(stream, level="debug").emit_query(
            outcome.trace, outcome.query_id
        )
        events = [json.loads(l) for l in stream.getvalue().splitlines()]
        star_events = [
            e
            for e in events
            if e.get("span") == names.CLOUD_STAR_MATCH
        ]
        assert star_events
        assert all(e["level"] == "debug" for e in star_events)

    def test_emit_query_appends_summary_event(self):
        system = _demo_system()
        outcome = system.query(example_query())
        stream = io.StringIO()
        written = EventLog(stream).emit_query(
            outcome.trace, outcome.query_id, matches=len(outcome.matches)
        )
        events = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert written == len(events)
        summary = events[-1]
        assert summary["event"] == "query"
        assert summary["matches"] == len(outcome.matches)
        assert summary["seconds"] == pytest.approx(
            outcome.trace.total_seconds
        )
        assert query_ids(events) == {outcome.query_id}

    def test_null_sink_is_disabled_and_silent(self):
        assert not NULL_EVENTS.enabled
        assert NULL_EVENTS.emit_query(None, "q-x") == 0
        assert not NULL_EVENTS.should_log("q-x")


class TestSystemIntegration:
    def test_config_attaches_file_log_and_ids_line_up(self, tmp_path):
        path = tmp_path / "logs" / "events.jsonl"
        system = _demo_system(event_log_path=str(path))
        assert system.obs.events.enabled
        first = system.query(example_query())
        second = system.query(example_query())
        system.obs.events.close()
        events = read_events(path)
        kinds = {e["event"] for e in events}
        assert {"publish", "span", "query"} <= kinds
        assert {first.query_id, second.query_id} <= query_ids(events)
        # every span event's id refers to a real query
        for event in events:
            if event["event"] == "span":
                assert event["query_id"] in {
                    first.query_id,
                    second.query_id,
                }

    def test_batch_emits_batch_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        system = _demo_system(event_log_path=str(path))
        system.query_batch(
            [example_query()] * 3, options=QueryOptions(backend="serial")
        )
        system.obs.events.close()
        events = read_events(path)
        batch_events = [e for e in events if e["event"] == names.BATCH]
        assert len(batch_events) == 1
        assert batch_events[0]["queries"] == 3
        assert batch_events[0]["backend"] == "serial"

    def test_config_validation_rejects_bad_values(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            SystemConfig(k=2, event_log_level="loud")
        with pytest.raises(ConfigError):
            SystemConfig(k=2, event_sample_rate=2.0)
        with pytest.raises(ConfigError):
            SystemConfig(k=2, slo_window_size=0)
        with pytest.raises(ConfigError):
            SystemConfig(k=2, slo_window_seconds=0.0)

    def test_query_window_feeds_metrics(self):
        system = _demo_system(slo_window_size=8)
        for _ in range(3):
            system.query(example_query())
        snap = system.query_window.snapshot()
        assert snap["count"] == 3.0
        assert snap["p95"] > 0.0
        from repro.obs import prometheus_text

        text = prometheus_text(system.obs.metrics)
        assert "repro_query_seconds_window_p99" in text
        assert "repro_cloud_seconds_window_p50" in text
