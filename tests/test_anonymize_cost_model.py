"""Unit tests for the star-cardinality estimator (Expression 4)."""

import pytest

from repro.anonymize import estimator_from_outsourced
from repro.anonymize.cost_model import StarCardinalityEstimator
from repro.graph import AttributedGraph, compute_statistics
from repro.matching import star_as_graph, star_of


def make_block_graph() -> AttributedGraph:
    """10 vertices: 5 of group gA, 5 of gB, all type t, ring topology."""
    graph = AttributedGraph()
    for vid in range(10):
        group = "gA" if vid < 5 else "gB"
        graph.add_vertex(vid, "t", {"a": [group]})
    for vid in range(10):
        graph.add_edge(vid, (vid + 1) % 10)
    return graph


def make_estimator(k: int = 2) -> StarCardinalityEstimator:
    graph = make_block_graph()
    return StarCardinalityEstimator(
        block_stats=compute_statistics(graph),
        gk_vertex_count=k * graph.vertex_count,
        average_degree=graph.average_degree(),
        k=k,
    )


def star_query(center_group: str, leaf_groups: list[str]) -> tuple[AttributedGraph, int]:
    query = AttributedGraph()
    query.add_vertex(0, "t", {"a": [center_group]})
    for i, group in enumerate(leaf_groups, start=1):
        query.add_vertex(i, "t", {"a": [group]})
        query.add_edge(0, i)
    return query, 0


class TestEstimator:
    def test_center_only_estimate(self):
        estimator = make_estimator()
        query, center = star_query("gA", [])
        # |V(Gk)|/k * P(type) * P(gA) = 10 * 1.0 * 0.5 = 5 candidates
        assert estimator.estimate(query, center) == pytest.approx(5.0)

    def test_leaves_multiply_search_space(self):
        estimator = make_estimator()
        one, center = star_query("gA", ["gA"])
        two, _ = star_query("gA", ["gA", "gA"])
        est_one = estimator.estimate(one, center)
        est_two = estimator.estimate(two, center)
        # each leaf contributes a factor D * P = 2 * 0.5 = 1.0 here
        assert est_two == pytest.approx(est_one * 1.0)

    def test_more_selective_center_lowers_estimate(self):
        graph = make_block_graph()
        # make gA rarer: only vertex 0 has it
        for vid in range(1, 5):
            graph.set_vertex_labels(vid, {"a": ["gB"]})
        estimator = StarCardinalityEstimator(
            block_stats=compute_statistics(graph),
            gk_vertex_count=20,
            average_degree=graph.average_degree(),
            k=2,
        )
        rare, center = star_query("gA", [])
        common, _ = star_query("gB", [])
        assert estimator.estimate(rare, center) < estimator.estimate(common, center)

    def test_unknown_group_estimates_zero(self):
        estimator = make_estimator()
        query, center = star_query("does-not-exist", [])
        assert estimator.estimate(query, center) == 0.0


class TestEstimatorFromOutsourced:
    def test_uses_block_statistics_and_go_degrees(self):
        graph = make_block_graph()
        block = [0, 1, 2, 3, 4]
        estimator = estimator_from_outsourced(block, graph, k=2)
        assert estimator.k == 2
        assert estimator.gk_vertex_count == 10
        # ring: every vertex has degree 2 in the full graph
        assert estimator.average_degree == pytest.approx(2.0)
        # block 0..4: 4 gA labels + vertex 4 is gA -> all 5 gA
        assert estimator.block_stats.frequency_of_label("t", "a", "gA") == 1.0

    def test_empty_block(self):
        graph = make_block_graph()
        estimator = estimator_from_outsourced([], graph, k=2)
        query, center = star_query("gA", [])
        assert estimator.estimate(query, center) == 0.0


class TestAverageSearchSpace:
    def test_expression5_arithmetic(self):
        from repro.anonymize import average_star_search_space

        value = average_star_search_space(
            per_attribute_costs={("t", "a"): 0.5},
            type_frequency_product=1.0,
            vertex_count=100,
            average_degree=2.0,
            average_center_degree=2.0,
            k=2,
        )
        # (0.5)^(2+1) * 100 * 2^2 / 2 = 0.125 * 200 = 25
        assert value == pytest.approx(25.0)

    def test_lower_label_cost_shrinks_space(self):
        from repro.anonymize import average_star_search_space

        def space(cost):
            return average_star_search_space(
                {("t", "a"): cost}, 1.0, 100, 2.0, 2.0, 2
            )

        assert space(0.2) < space(0.5)


class TestDeltaK:
    def test_zero_when_group_mass_not_inflated(self):
        from repro.anonymize import LabelCorrespondenceTable, measure_delta_k

        graph = make_block_graph()
        stats = compute_statistics(graph)
        lct = LabelCorrespondenceTable(theta=1)
        lct.add_group("t", "a", ["gA"])
        lct.add_group("t", "a", ["gB"])
        # "published" stats identical to original: no inflation
        assert measure_delta_k(stats, stats, lct) == 0.0

    def test_detects_inflation(self):
        from repro.anonymize import LabelCorrespondenceTable, measure_delta_k

        original = make_block_graph()
        lct = LabelCorrespondenceTable(theta=1)
        gid_a = lct.add_group("t", "a", ["gA"])
        gid_b = lct.add_group("t", "a", ["gB"])
        # the published graph carries *group ids*; inflate gA's group
        # by two extra carriers (the row-union effect)
        published = lct.apply_to_graph(original)
        published.set_vertex_labels(5, {"a": [gid_a, gid_b]})
        published.set_vertex_labels(6, {"a": [gid_a, gid_b]})
        delta_max = measure_delta_k(
            compute_statistics(original), compute_statistics(published), lct, "max"
        )
        delta_mean = measure_delta_k(
            compute_statistics(original), compute_statistics(published), lct, "mean"
        )
        # gA went from 5 to 7 carriers: inflation 0.4; gB unchanged
        assert delta_max == pytest.approx(0.4)
        assert delta_mean == pytest.approx(0.2)

    def test_invalid_aggregate(self):
        from repro.anonymize import LabelCorrespondenceTable, measure_delta_k

        stats = compute_statistics(make_block_graph())
        lct = LabelCorrespondenceTable(theta=1)
        lct.add_group("t", "a", ["gA"])
        with pytest.raises(ValueError):
            measure_delta_k(stats, stats, lct, aggregate="median")


class TestEstimatorRanksStarsUsefully:
    def test_label_constraint_lowers_estimate(self, figure1_graph):
        """Adding a label to a star's center must shrink its estimate."""
        from repro.graph import example_query

        query = example_query()
        estimator = StarCardinalityEstimator(
            block_stats=compute_statistics(figure1_graph),
            gk_vertex_count=figure1_graph.vertex_count,
            average_degree=figure1_graph.average_degree(),
            k=1,
        )
        star_q1 = star_as_graph(query, star_of(query, 0))
        labeled = estimator.estimate(star_q1, 0)
        unlabeled_star = star_q1.copy()
        unlabeled_star.set_vertex_labels(0, {})
        unlabeled = estimator.estimate(unlabeled_star, 0)
        assert labeled < unlabeled
