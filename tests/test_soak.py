"""Soak test: one moderately large end-to-end deployment.

Slower than the unit tests (~10-20 s) but still CI-friendly; exercises
the pipeline at several times the scale of the other integration tests
to catch scale-dependent bugs (id handling, mask widths, recursion).
"""

import pytest

from repro import PrivacyPreservingSystem, SystemConfig
from repro.kauto import verify_k_automorphism
from repro.matching import find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset


@pytest.mark.parametrize("dataset_name", ["Web-NotreDame"])
def test_moderate_scale_deployment(dataset_name):
    dataset = load_dataset(dataset_name, scale=0.5)  # ~750 vertices
    assert dataset.graph.vertex_count >= 700

    workload = generate_workload(dataset.graph, 6, 5, seed=41)
    system = PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=4, star_cache_size=128, max_intermediate_results=500_000),
        sample_workload=workload,
    )

    transform = system.published.transform
    verify_k_automorphism(transform.gk, transform.avt)
    assert transform.gk.vertex_count >= 4 * (dataset.graph.vertex_count // 4)

    for query in workload:
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, dataset.graph)}
        assert {match_key(m) for m in outcome.matches} == oracle
        # the wire really carried everything
        assert outcome.metrics.answer_bytes > 0

    # deep id space: the bitset index handled ~800-bit masks
    assert system.cloud.index.size_bytes() > 0
