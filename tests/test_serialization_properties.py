"""Property-based round-trip tests for every serialized artifact."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize import LabelCorrespondenceTable
from repro.core.protocol import (
    decode_answer,
    decode_query,
    decode_upload,
    encode_answer,
    encode_query,
    encode_upload,
)
from repro.graph import AttributedGraph, graph_from_json, graph_to_json
from repro.kauto import AlignmentVertexTable
from repro.matching import matches_to_rows, rows_to_matches

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
label_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=6,
)


@st.composite
def attributed_graphs(draw) -> AttributedGraph:
    n = draw(st.integers(1, 12))
    graph = AttributedGraph(draw(label_text))
    types = draw(st.lists(label_text, min_size=1, max_size=3, unique=True))
    for vid in range(n):
        vertex_type = draw(st.sampled_from(types))
        labels = draw(
            st.dictionaries(
                keys=label_text,
                values=st.sets(label_text, min_size=1, max_size=3),
                max_size=2,
            )
        )
        graph.add_vertex(vid, vertex_type, {a: sorted(v) for a, v in labels.items()})
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible_edges:
        chosen = draw(
            st.lists(st.sampled_from(possible_edges), max_size=2 * n, unique=True)
        )
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


@st.composite
def avts(draw) -> AlignmentVertexTable:
    k = draw(st.integers(1, 4))
    rows = draw(st.integers(1, 6))
    vid = iter(range(10_000))
    return AlignmentVertexTable([[next(vid) for _ in range(k)] for _ in range(rows)])


class TestGraphJsonRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graph=attributed_graphs())
    def test_round_trip(self, graph):
        restored = graph_from_json(graph_to_json(graph))
        assert restored.structure_equal(graph)
        assert restored.name == graph.name


class TestProtocolRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(graph=attributed_graphs(), avt=avts())
    def test_upload(self, graph, avt):
        restored_graph, restored_avt = decode_upload(encode_upload(graph, avt))
        assert restored_graph.structure_equal(graph)
        assert list(restored_avt.rows()) == list(avt.rows())

    @settings(max_examples=30, deadline=None)
    @given(graph=attributed_graphs())
    def test_query(self, graph):
        assert decode_query(encode_query(graph)).structure_equal(graph)

    @settings(max_examples=40, deadline=None)
    @given(
        order=st.lists(st.integers(0, 20), min_size=1, max_size=5, unique=True),
        rows=st.integers(0, 30),
        expanded=st.booleans(),
        data=st.data(),
    )
    def test_answer(self, order, rows, expanded, data):
        matches = [
            {q: data.draw(st.integers(0, 10_000)) for q in order} for _ in range(rows)
        ]
        decoded, decoded_expanded = decode_answer(
            encode_answer(matches, order, expanded)
        )
        assert decoded == matches
        assert decoded_expanded == expanded


class TestTabularRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        order=st.lists(st.integers(0, 9), min_size=1, max_size=5, unique=True),
        rows=st.integers(0, 20),
        data=st.data(),
    )
    def test_rows(self, order, rows, data):
        matches = [
            {q: data.draw(st.integers(0, 100)) for q in order} for _ in range(rows)
        ]
        assert rows_to_matches(matches_to_rows(matches, order), order) == matches


class TestLctRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        theta=st.integers(1, 4),
        universes=st.lists(
            st.tuples(
                label_text,
                label_text,
                st.lists(label_text, min_size=1, max_size=8, unique=True),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_round_trip(self, theta, universes):
        lct = LabelCorrespondenceTable(theta)
        seen: set[tuple[str, str]] = set()
        for vertex_type, attribute, labels in universes:
            if (vertex_type, attribute) in seen:
                continue
            seen.add((vertex_type, attribute))
            # one group per universe (theta not enforced here)
            lct.add_group(vertex_type, attribute, labels)
        restored = LabelCorrespondenceTable.from_dict(lct.to_dict())
        assert restored.theta == lct.theta
        assert restored.group_ids() == lct.group_ids()
        for gid in lct.group_ids():
            assert restored.members(gid) == lct.members(gid)


class TestLctApplicationProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 25), theta=st.integers(1, 3))
    def test_generalization_properties(self, seed, n, theta):
        """LCT application: structure untouched, labels all group ids,
        and every group id maps back to a group containing the raw
        label it replaced."""
        from repro.anonymize import STRATEGIES, build_lct
        from repro.graph import make_schema, random_attributed_graph

        schema = make_schema(2, 1, 6)
        graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
        lct = build_lct(schema, theta, STRATEGIES["RAN"], seed=seed)
        generalized = lct.apply_to_graph(graph)

        assert generalized.vertex_id_set() == graph.vertex_id_set()
        assert generalized.edge_set() == graph.edge_set()
        all_group_ids = set(lct.group_ids())
        for data in generalized.vertices():
            original = graph.vertex(data.vertex_id)
            assert data.vertex_type == original.vertex_type
            for attr, groups in data.labels.items():
                assert groups <= all_group_ids
                # soundness: each original label's group is present
                for label in original.labels.get(attr, ()):
                    assert lct.group_of(original.vertex_type, attr, label) in groups


class TestAvtDictRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(avt=avts())
    def test_round_trip(self, avt):
        restored = AlignmentVertexTable.from_dict(avt.to_dict())
        assert list(restored.rows()) == list(avt.rows())
        assert restored.k == avt.k
