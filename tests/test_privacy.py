"""Privacy-guarantee tests: what the cloud sees must not leak.

These tests check the paper's two privacy claims against the actual
artifacts shipped to the cloud:

* **structural privacy** — the published graph is k-automorphic, so
  every vertex has k-1 structurally identical twins (re-identification
  probability <= 1/k against any structural attack);
* **label privacy** — no raw label ever appears in any cloud-visible
  artifact (published graph, AVT, query message); only group ids with
  >= theta member labels do.
"""

import json

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.core.protocol import encode_query, encode_upload
from repro.graph import example_query, example_social_network
from repro.kauto import verify_blocks_isomorphic, verify_k_automorphism
from repro.workloads import generate_workload, load_dataset


def all_raw_labels(graph) -> set[str]:
    return {label for data in graph.vertices() for _, label in data.label_items()}


@pytest.fixture(scope="module")
def deployed():
    graph, schema = example_social_network()
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    return graph, schema, system


class TestStructuralPrivacy:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_published_graph_is_k_automorphic(self, k):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=k))
        transform = system.published.transform
        verify_k_automorphism(transform.gk, transform.avt)
        verify_blocks_isomorphic(transform.gk, transform.avt)

    def test_every_vertex_has_k_minus_1_twins(self, deployed):
        _, _, system = deployed
        avt = system.published.transform.avt
        for vid in avt.vertex_ids():
            group = avt.symmetric_group(vid)
            assert len(set(group)) == avt.k
            assert vid in group

    def test_dataset_scale_structural_privacy(self):
        dataset = load_dataset("DBpedia", scale=0.1)
        system = PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=3)
        )
        transform = system.published.transform
        verify_k_automorphism(transform.gk, transform.avt)


class TestLabelPrivacy:
    def test_upload_contains_no_raw_label(self, deployed):
        graph, _, system = deployed
        payload = encode_upload(
            system.published.upload_graph, system.published.transform.avt
        ).decode("utf-8")
        for label in all_raw_labels(graph):
            assert label not in payload

    def test_query_message_contains_no_raw_label(self, deployed):
        graph, _, system = deployed
        query = example_query()
        anonymized = system.client.prepare_query(query)
        payload = encode_query(anonymized).decode("utf-8")
        for label in all_raw_labels(query):
            assert label not in payload

    def test_every_group_hides_at_least_theta_labels(self, deployed):
        _, _, system = deployed
        lct = system.published.lct
        for gid in lct.group_ids():
            assert len(lct.members(gid)) >= lct.theta

    def test_answer_rows_are_vertex_ids_only(self, deployed):
        graph, _, system = deployed
        outcome = system.query(example_query())
        answers = [t for t in system.channel.transfers if t.direction == "answer"]
        assert answers  # an answer traveled
        # re-encode last answer deterministically and confirm no labels:
        # rows are pure integers, so any raw label string would be a bug
        assert outcome.metrics.answer_bytes == answers[-1].payload_bytes

    def test_bas_also_hides_labels(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, method=MethodConfig.from_name("BAS"))
        )
        payload = encode_upload(
            system.published.upload_graph, system.published.transform.avt
        ).decode("utf-8")
        for label in all_raw_labels(graph):
            assert label not in payload


class TestSymmetricIndistinguishability:
    def test_twins_have_identical_local_views(self, deployed):
        """Type, label groups and degree coincide within each AVT row."""
        _, _, system = deployed
        gk = system.published.transform.gk
        avt = system.published.transform.avt
        for row in avt.rows():
            degrees = {gk.degree(v) for v in row}
            types = {gk.vertex(v).vertex_type for v in row}
            labels = {
                json.dumps(sorted((a, sorted(vs)) for a, vs in gk.vertex(v).labels.items()))
                for v in row
            }
            assert len(degrees) == 1
            assert len(types) == 1
            assert len(labels) == 1

    def test_neighborhood_multisets_match(self, deployed):
        """1-hop neighbourhood signatures coincide within each row
        (the 1-neighbor-graph attack of the introduction fails)."""
        _, _, system = deployed
        gk = system.published.transform.gk
        avt = system.published.transform.avt

        def signature(vid):
            return sorted(
                (gk.vertex(n).vertex_type, gk.degree(n)) for n in gk.neighbors(vid)
            )

        for row in avt.rows():
            signatures = {json.dumps(signature(v)) for v in row}
            assert len(signatures) == 1


class TestQueryResultConfidentiality:
    def test_cloud_candidates_superset_hides_true_answers(self):
        """The cloud's Rin strictly over-approximates the true result
        set whenever noise was added, so observing Rin does not reveal
        which candidates are real."""
        dataset = load_dataset("Web-NotreDame", scale=0.08)
        workload = generate_workload(dataset.graph, 4, 3, seed=5)
        system = PrivacyPreservingSystem.setup(
            dataset.graph, dataset.schema, SystemConfig(k=3), sample_workload=workload
        )
        saw_false_positive = False
        for query in workload:
            outcome = system.query(query)
            assert outcome.metrics.candidate_count >= outcome.metrics.result_count
            if outcome.metrics.candidate_count > outcome.metrics.result_count:
                saw_false_positive = True
        assert saw_false_positive
