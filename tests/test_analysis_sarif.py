"""The SARIF reporter against a vendored SARIF 2.1.0 schema subset.

The full OASIS schema is ~1300 lines; CI must not fetch it from the
network, so this suite vendors the subset covering everything
``render_sarif`` emits — log/run/tool/driver/reportingDescriptor/
result/location shapes, the closed ``level`` enum, required
properties, ``additionalProperties: false`` where the spec is closed
for the fields we produce — and validates real lint output against
it with ``jsonschema``.  A reporter change that breaks GitHub
code-scanning ingestion fails here, not in the upload step.
"""

from __future__ import annotations

import json
from pathlib import Path

from jsonschema import validate

from repro.analysis import get_rule, lint_paths
from repro.analysis.engine import LintResult, lint_file
from repro.analysis.reporters import render_sarif, result_to_sarif

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"

#: SARIF 2.1.0, restricted to the shapes repro-lint emits.  Property
#: names, required sets and the level enum are verbatim from
#: sarif-schema-2.1.0.json.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "$ref": (
                                                "#/definitions/"
                                                "reportingDescriptor"
                                            )
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {"$ref": "#/definitions/result"},
                    },
                },
            },
        },
    },
    "definitions": {
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string"},
                "shortDescription": {
                    "$ref": "#/definitions/multiformatMessageString"
                },
                "help": {
                    "$ref": "#/definitions/multiformatMessageString"
                },
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {"$ref": "#/definitions/level"}
                    },
                },
            },
        },
        "multiformatMessageString": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
        "level": {"enum": ["none", "note", "warning", "error"]},
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "level": {"$ref": "#/definitions/level"},
                "message": {
                    "type": "object",
                    "required": ["text"],
                    "properties": {"text": {"type": "string"}},
                },
                "locations": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "properties": {
                            "physicalLocation": {
                                "type": "object",
                                "properties": {
                                    "artifactLocation": {
                                        "type": "object",
                                        "properties": {
                                            "uri": {"type": "string"},
                                            "uriBaseId": {
                                                "type": "string"
                                            },
                                        },
                                    },
                                    "region": {
                                        "type": "object",
                                        "properties": {
                                            "startLine": {
                                                "type": "integer",
                                                "minimum": 1,
                                            },
                                            "startColumn": {
                                                "type": "integer",
                                                "minimum": 1,
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                },
            },
        },
    },
}


def _result_with_findings() -> LintResult:
    findings = []
    for name in ("r6_violation.py", "r7_violation.py", "r8_violation.py"):
        rule_id = name[:2].upper()
        findings.extend(
            lint_file(FIXTURES / name, rules=[get_rule(rule_id)])
        )
    return LintResult(
        findings=sorted(findings),
        files_checked=3,
        rules=["R6", "R7", "R8"],
    )


def test_sarif_with_findings_validates_against_schema():
    doc = result_to_sarif(_result_with_findings())
    validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)
    results = doc["runs"][0]["results"]
    assert results, "fixtures must produce SARIF results"
    # all three severity tiers appear, mapped to SARIF's level enum
    assert {r["level"] for r in results} == {"error", "warning", "note"}


def test_sarif_empty_result_validates_and_keeps_rule_catalog():
    doc = result_to_sarif(LintResult(files_checked=0, rules=[]))
    validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)
    assert doc["runs"][0]["results"] == []
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
    ]


def test_sarif_columns_are_one_based():
    result = _result_with_findings()
    doc = result_to_sarif(result)
    for finding, sarif_result in zip(
        result.findings, doc["runs"][0]["results"]
    ):
        region = sarif_result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1


def test_render_sarif_round_trips_through_json():
    text = render_sarif(_result_with_findings())
    doc = json.loads(text)
    validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)


def test_real_tree_sarif_validates():
    doc = result_to_sarif(lint_paths([str(REPO / "src" / "repro" / "obs")]))
    validate(instance=doc, schema=SARIF_SUBSET_SCHEMA)
