"""Unit tests for the benchmark harness (reporting + runner)."""

import pytest

from repro.bench import (
    ExperimentContext,
    bench_query_count,
    bench_scale,
    format_series,
    format_table,
    ms,
)
from repro.core.metrics import AggregatedMetrics, QueryMetrics
from repro.workloads import load_dataset


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "bbbb" in lines[1]
        # all rows same width
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_series_layout(self):
        text = format_series("fig", "k", [2, 3], {"EFF": [1.0, 2.0], "BAS": [3.0, 4.0]})
        assert "EFF" in text and "BAS" in text
        # title + header + rule + 2 data rows = 5 lines
        assert len(text.splitlines()) == 5

    def test_float_formatting(self):
        table = format_table(["x"], [[0.0], [123456.0], [0.1234567], [12.3]])
        assert "0" in table
        assert "123,456" in table
        assert "0.1235" in table
        assert "12.30" in table

    def test_ms_conversion(self):
        assert ms(1.5) == 1500.0


class TestAggregatedMetrics:
    def test_means(self):
        agg = AggregatedMetrics()
        agg.add(QueryMetrics(cloud_seconds=1.0, client_seconds=0.2, rs_size=10))
        agg.add(QueryMetrics(cloud_seconds=3.0, client_seconds=0.4, rs_size=20))
        assert agg.cloud_seconds == pytest.approx(2.0)
        assert agg.client_seconds == pytest.approx(0.3)
        assert agg.rs_size == pytest.approx(15.0)

    def test_empty_aggregate(self):
        agg = AggregatedMetrics()
        assert agg.cloud_seconds == 0.0
        assert agg.total_seconds == 0.0


class TestRunner:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "7")
        assert bench_scale() == 0.5
        assert bench_query_count() == 7

    def test_env_knobs_malformed_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "many")
        assert bench_scale(0.3) == 0.3
        assert bench_query_count(9) == 9

    def test_context_caches_systems(self):
        context = ExperimentContext(dataset=load_dataset("DBpedia", scale=0.05))
        first = context.system("EFF", 2)
        second = context.system("EFF", 2)
        assert first is second
        other = context.system("RAN", 2)
        assert other is not first

    def test_context_runs_cells(self):
        context = ExperimentContext(dataset=load_dataset("DBpedia", scale=0.08))
        aggregate = context.run("EFF", 2, 3, query_count=3)
        assert len(aggregate.runs) + aggregate.skipped == 3
        assert aggregate.cloud_seconds >= 0.0

    def test_workload_is_cached_and_sized(self):
        context = ExperimentContext(dataset=load_dataset("DBpedia", scale=0.08))
        first = context.workload(4, 3)
        again = context.workload(4, 3)
        assert [q.edge_count for q in first] == [4, 4, 4]
        assert first == again[: len(first)]

    def test_budget_exceeding_queries_are_counted_as_skipped(self, monkeypatch):
        """A query over budget is skipped, not fatal, in the runner."""
        import repro.bench.runner as runner_module

        monkeypatch.setattr(runner_module, "BENCH_RESULT_BUDGET", 0)
        context = ExperimentContext(dataset=load_dataset("DBpedia", scale=0.08))
        aggregate = context.run("EFF", 2, 4, query_count=3)
        # every query matches its own source, so a zero budget trips always
        assert aggregate.skipped == 3
        assert aggregate.runs == []
