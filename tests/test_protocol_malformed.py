"""The protocol decoders' unified exception envelope.

Every ``decode_*`` function promises exactly one failure mode for a
malformed payload: :class:`~repro.exceptions.ProtocolError`.  Before
the envelope was unified, wrong-typed fields escaped as ``TypeError``
or ``AttributeError`` and invalid graph sections as ``GraphError`` —
callers that caught ``ProtocolError`` (the serve loop, the batch CLI)
crashed on exactly the payloads the envelope exists for.  This suite
drives every decoder through every corruption family (truncation,
invalid UTF-8, non-object JSON, missing fields, wrong-typed fields)
plus a hypothesis fuzz of arbitrary byte strings, asserting the
decoder either succeeds or raises ``ProtocolError`` — never a raw
``KeyError``/``TypeError``/``AttributeError``/``ValueError``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    TraceContext,
    decode_answer,
    decode_answer_batch,
    decode_answer_table,
    decode_gateway_answer,
    decode_gateway_hello,
    decode_gateway_reject,
    decode_gateway_request,
    decode_query,
    decode_query_batch,
    decode_shard_request,
    decode_shard_tables,
    decode_trace_context,
    decode_upload,
    encode_answer,
    encode_answer_batch,
    encode_answer_table,
    encode_gateway_answer,
    encode_gateway_hello,
    encode_gateway_reject,
    encode_gateway_request,
    encode_query,
    encode_query_batch,
    encode_shard_request,
    encode_shard_tables,
    encode_trace_context,
    encode_upload,
)
from repro.exceptions import ProtocolError, ReproError
from repro.graph import example_social_network
from repro.kauto import build_k_automorphic_graph
from repro.matching import MatchTable
from repro.matching.star import Star
from repro.outsource import build_outsourced_graph


@pytest.fixture(scope="module")
def wire():
    """One valid payload per message type, from a real deployment."""
    graph, _ = example_social_network()
    transform = build_k_automorphic_graph(graph, 2, seed=0)
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    table = MatchTable((0, 1), [(3, 4), (5, 6)])
    matches = [{0: 3, 1: 4}]
    stars = [Star(center=0, leaves=(1, 2))]
    return {
        "upload": encode_upload(outsourced.graph, transform.avt),
        "query": encode_query(graph),
        "answer": encode_answer(matches, [0, 1], expanded=True),
        "answer_table": encode_answer_table(table, [0, 1], expanded=False),
        "query_batch": encode_query_batch([graph, graph]),
        "answer_batch": encode_answer_batch([(matches, [0, 1], True)]),
        "shard_request": encode_shard_request(graph, stars),
        "shard_tables": encode_shard_tables({0: table}),
        "gateway_hello": encode_gateway_hello("alice", "secret"),
        "gateway_request": encode_gateway_request("alice-1", [graph]),
        "gateway_answer": encode_gateway_answer(
            "alice-1", [(table, [0, 1], False)]
        ),
        "gateway_reject": encode_gateway_reject(
            "alice-1", "overloaded", "shedding"
        ),
        "trace_context": encode_trace_context(
            TraceContext(query_id="q-7", parent_span_id=3)
        ),
    }


DECODERS = {
    "upload": decode_upload,
    "query": decode_query,
    "answer": decode_answer,
    "answer_table": decode_answer_table,
    "query_batch": decode_query_batch,
    "answer_batch": decode_answer_batch,
    "shard_request": decode_shard_request,
    "shard_tables": decode_shard_tables,
    "gateway_hello": decode_gateway_hello,
    "gateway_request": decode_gateway_request,
    "gateway_answer": decode_gateway_answer,
    "gateway_reject": decode_gateway_reject,
    "trace_context": decode_trace_context,
}

#: Field corruptions per message type: (path, replacement) pairs.  The
#: path indexes into the decoded JSON object; the replacement is a
#: wrong-typed value the decoder must reject as ProtocolError.
WRONG_TYPED: dict[str, list[tuple[tuple, object]]] = {
    "upload": [(("graph",), 7), (("avt",), "nope"), (("graph", "vertices"), 1)],
    "query": [(("vertices",), "x"), (("edges",), {"a": 1})],
    "answer": [(("rows",), 5), (("order",), None), (("rows",), [1])],
    "answer_table": [(("rows",), 5), (("rows",), [[1]]), (("order",), 3)],
    "query_batch": [(("queries",), 5), (("queries",), [7])],
    "answer_batch": [(("answers",), "x"), (("answers",), [None])],
    "shard_request": [
        (("stars",), 5),
        (("stars",), [None]),
        (("stars",), [{"center": "x", "leaves": None}]),
        (("query",), []),
        # a corrupted embedded trace context fails the whole frame —
        # it must never silently degrade to an untraced request.
        (("ctx",), 5),
        (("ctx",), {"q": 1, "p": 0}),
    ],
    "shard_tables": [
        (("tables",), 5),
        (("tables",), [None]),
        (("tables",), [{"center": None, "schema": 1, "rows": 2}]),
        (("tables",), [{"center": 0, "schema": [0, 1], "rows": [[1]]}]),
    ],
    "gateway_hello": [
        (("client_id",), 5),
        (("client_id",), ""),
        (("token",), 7),
    ],
    "gateway_request": [
        (("id",), 5),
        (("queries",), 5),
        (("queries",), []),
        (("queries",), [7]),
        (("ctx",), []),
        (("ctx",), {"q": "x", "p": -1}),
    ],
    "gateway_answer": [
        (("id",), 5),
        (("answers",), 5),
        (("answers",), [None]),
        (("answers",), [{"order": [0, 1], "rows": [[1]], "expanded": True}]),
        (("trace",), 5),
        (("trace",), {"spans": [7]}),
    ],
    "gateway_reject": [
        (("id",), 9),
        (("code",), 5),
        (("code",), ""),
        (("message",), None),
    ],
}

#: Exceptions that must never escape a decoder (the raw errors the
#: envelope wraps).  ProtocolError is a ReproError, so the assertion
#: below checks the *concrete* type, not just inheritance.
RAW_ERRORS = (KeyError, ValueError, TypeError, AttributeError, IndexError)


def corrupt(payload: bytes, path: tuple, value: object) -> bytes:
    data = json.loads(payload.decode("utf-8"))
    target = data
    for key in path[:-1]:
        target = target[key]
    target[path[-1]] = value
    return json.dumps(data).encode("utf-8")


def drop_field(payload: bytes, field: str) -> bytes:
    data = json.loads(payload.decode("utf-8"))
    data.pop(field, None)
    return json.dumps(data).encode("utf-8")


def assert_protocol_error(decoder, payload: bytes) -> None:
    """The decoder raises ProtocolError — and nothing rawer."""
    try:
        decoder(payload)
    except ProtocolError as exc:
        assert "malformed" in str(exc)
        assert exc.__cause__ is not None
    except RAW_ERRORS as exc:  # pragma: no cover - the failure this pins
        pytest.fail(
            f"{decoder.__name__} leaked {type(exc).__name__}: {exc!r}"
        )
    else:
        pytest.fail(f"{decoder.__name__} accepted a corrupted payload")


class TestCorruptionFamilies:
    @pytest.mark.parametrize("kind", sorted(DECODERS))
    def test_truncated_payload(self, wire, kind):
        payload = wire[kind]
        assert_protocol_error(DECODERS[kind], payload[: len(payload) // 2])

    @pytest.mark.parametrize("kind", sorted(DECODERS))
    def test_invalid_utf8(self, wire, kind):
        assert_protocol_error(DECODERS[kind], b"\xff\xfe\x00garbage")

    @pytest.mark.parametrize("kind", sorted(DECODERS))
    @pytest.mark.parametrize(
        "payload", [b"[]", b'"text"', b"42", b"null", b"true"]
    )
    def test_non_object_json(self, wire, kind, payload):
        assert_protocol_error(DECODERS[kind], payload)

    @pytest.mark.parametrize("kind", sorted(DECODERS))
    def test_empty_object(self, wire, kind):
        assert_protocol_error(DECODERS[kind], b"{}")

    @pytest.mark.parametrize("kind", sorted(DECODERS))
    def test_missing_fields(self, wire, kind):
        # dropping an *optional* field may legally still decode; what
        # must never happen is a raw KeyError escaping the envelope.
        data = json.loads(wire[kind].decode("utf-8"))
        for field in data:
            payload = drop_field(wire[kind], field)
            try:
                DECODERS[kind](payload)
            except ProtocolError as exc:
                assert exc.__cause__ is not None
            except RAW_ERRORS as exc:  # pragma: no cover
                pytest.fail(
                    f"{DECODERS[kind].__name__} leaked "
                    f"{type(exc).__name__} on missing {field!r}"
                )

    @pytest.mark.parametrize(
        "kind,path,value",
        [
            (kind, path, value)
            for kind, cases in sorted(WRONG_TYPED.items())
            for path, value in cases
        ],
    )
    def test_wrong_typed_fields(self, wire, kind, path, value):
        assert_protocol_error(
            DECODERS[kind], corrupt(wire[kind], path, value)
        )


class TestFuzz:
    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(max_size=200))
    def test_arbitrary_bytes_never_leak_raw_errors(self, payload):
        for decoder in DECODERS.values():
            try:
                decoder(payload)
            except ProtocolError:
                pass

    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.text(max_size=8),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=8), inner, max_size=4),
            max_leaves=12,
        )
    )
    def test_arbitrary_json_never_leaks_raw_errors(self, payload):
        encoded = json.dumps(payload).encode("utf-8")
        for decoder in DECODERS.values():
            try:
                decoder(encoded)
            except ProtocolError:
                pass


class TestTraceContext:
    """The compact codec: round trip + corruption only -> ProtocolError."""

    @settings(max_examples=60, deadline=None)
    @given(
        query_id=st.text(max_size=16),
        parent=st.integers(min_value=0, max_value=2**53),
        sampled=st.booleans(),
    )
    def test_round_trips(self, query_id, parent, sampled):
        context = TraceContext(
            query_id=query_id, parent_span_id=parent, sampled=sampled
        )
        assert decode_trace_context(encode_trace_context(context)) == context

    @settings(max_examples=100, deadline=None)
    @given(
        doc=st.dictionaries(
            st.sampled_from(["q", "p", "s", "junk"]),
            st.none()
            | st.booleans()
            | st.integers()
            | st.text(max_size=8)
            | st.lists(st.integers(), max_size=3),
            max_size=4,
        )
    )
    def test_arbitrary_docs_only_raise_protocol_error(self, doc):
        payload = json.dumps(doc).encode("utf-8")
        try:
            decode_trace_context(payload)
        except ProtocolError:
            pass

    def test_embedded_context_round_trips_on_request_frames(self, wire):
        query, stars, none_context = decode_shard_request(
            wire["shard_request"]
        )
        assert none_context is None
        context = TraceContext(query_id="q-9", parent_span_id=41)
        _, _, shard_ctx = decode_shard_request(
            encode_shard_request(query, list(stars), context=context)
        )
        assert shard_ctx == context
        _, _, gateway_ctx = decode_gateway_request(
            encode_gateway_request("alice-1", [query], context=context)
        )
        assert gateway_ctx == context

    def test_context_field_is_strictly_optional(self, wire):
        """``context=None`` leaves the frame bytes untouched (old clients)."""
        query, stars, _ = decode_shard_request(wire["shard_request"])
        traced = encode_shard_request(
            query,
            list(stars),
            context=TraceContext(query_id="q", parent_span_id=1),
        )
        data = json.loads(traced.decode("utf-8"))
        data.pop("ctx")
        assert (
            json.dumps(data, sort_keys=True).encode("utf-8")
            == encode_shard_request(query, list(stars))
        )


class TestShardFrameRoundTrip:
    def test_shard_request_round_trips(self, wire):
        query, stars, context = decode_shard_request(wire["shard_request"])
        assert [star.center for star in stars] == [0]
        assert stars[0].leaves == (1, 2)
        assert query.vertex_count > 0
        assert context is None

    def test_shard_tables_round_trip(self, wire):
        tables = decode_shard_tables(wire["shard_tables"])
        assert set(tables) == {0}
        assert tables[0].schema == (0, 1)
        assert tables[0].rows == [(3, 4), (5, 6)]

    def test_protocol_error_is_repro_error(self):
        assert issubclass(ProtocolError, ReproError)
