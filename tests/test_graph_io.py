"""Unit tests for graph/schema serialization."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    example_social_network,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_graph,
    load_schema,
    make_schema,
    save_graph,
    save_schema,
    serialized_size,
)


class TestGraphRoundTrip:
    def test_json_round_trip_preserves_everything(self, figure1_graph):
        restored = graph_from_json(graph_to_json(figure1_graph))
        assert restored.structure_equal(figure1_graph)
        assert restored.name == figure1_graph.name

    def test_dict_round_trip_empty_graph(self):
        from repro.graph import AttributedGraph

        empty = AttributedGraph("empty")
        restored = graph_from_dict(graph_to_dict(empty))
        assert restored.vertex_count == 0
        assert restored.edge_count == 0

    def test_unsupported_version_rejected(self, figure1_graph):
        data = graph_to_dict(figure1_graph)
        data["version"] = 999
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_serialization_is_deterministic(self, figure1_graph):
        assert graph_to_json(figure1_graph) == graph_to_json(figure1_graph)

    def test_file_round_trip(self, tmp_path, figure1_graph):
        path = tmp_path / "graph.json"
        save_graph(figure1_graph, path)
        assert load_graph(path).structure_equal(figure1_graph)


class TestSchemaRoundTrip:
    def test_file_round_trip(self, tmp_path):
        schema = make_schema(3, 2, 4)
        path = tmp_path / "schema.json"
        save_schema(schema, path)
        assert load_schema(path) == schema


class TestSerializedSize:
    def test_size_grows_with_graph(self):
        graph, _ = example_social_network()
        bigger = graph.copy()
        bigger.add_vertex(100, "person", {"gender": ["male"]})
        bigger.add_edge(100, 0)
        assert serialized_size(bigger) > serialized_size(graph)

    def test_size_matches_encoding(self, figure1_graph):
        assert serialized_size(figure1_graph) == len(
            graph_to_json(figure1_graph).encode("utf-8")
        )
