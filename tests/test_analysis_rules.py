"""The invariant linter's rules against their fixture pairs.

Every rule in :mod:`repro.analysis.rules` has two fixtures under
``tests/data/lint_fixtures/``: a ``*_clean.py`` file the rule must
accept and a ``*_violation.py`` file it must reject (proving the rule
actually *fails* on a seeded violation, not just passes on good code).
The fixtures carry ``# lint: module=...`` overrides where a rule is
scoped by module name.

The suite also pins the two meta-invariants the PR's acceptance
criteria name: the repo's own source tree lints clean, and the span
taxonomy in ``repro.obs.names`` exactly matches the span names R2's
extraction finds in the codebase.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Severity,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    rule_ids,
)
from repro.analysis.engine import PARSE_ERROR_RULE, ModuleInfo, iter_python_files
from repro.analysis.rules.canonical_names import DOTTED_SPANS, SPAN_CALL_ATTRS
from repro.obs import names

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"
RULE_IDS = ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8")


def fixture(name: str) -> Path:
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return path


def findings_for(name: str, rule_id: str) -> list[Finding]:
    return lint_file(fixture(name), rules=[get_rule(rule_id)])


# ----------------------------------------------------------------------
# per-rule fixture pairs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_accepts_clean_fixture(rule_id):
    name = f"{rule_id.lower()}_clean.py"
    assert findings_for(name, rule_id) == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fails_on_seeded_violation(rule_id):
    name = f"{rule_id.lower()}_violation.py"
    found = findings_for(name, rule_id)
    assert found, f"{rule_id} did not flag its violating fixture"
    assert all(f.rule == rule_id for f in found)
    # R7/R8 downgrade heuristic sub-checks, but every violating fixture
    # must carry at least one gate-failing finding.
    assert any(f.severity is Severity.ERROR for f in found)
    assert all(f.hint for f in found), "every finding carries a fix hint"


def test_r1_flags_each_seeded_import():
    lines = {f.line for f in findings_for("r1_violation.py", "R1")}
    # three top-level imports + the function-nested relative import
    assert lines == {4, 5, 6, 11}


def test_r2_flags_all_four_shapes():
    found = findings_for("r2_violation.py", "R2")
    messages = " / ".join(f.message for f in found)
    assert len(found) == 4
    assert "cloud.star_matching" in messages  # literal span-call name
    assert "cloud.answer" in messages  # dotted literal at rest
    assert "queries_total" in messages  # metric literal
    assert "f-string" in messages  # runtime-built name


def test_r3_flags_unlocked_and_callback_accesses():
    found = findings_for("r3_violation.py", "R3")
    assert len(found) == 3
    assert all("guarded by _lock" in f.message for f in found)


def test_r4_distinguishes_loop_and_raise_fstrings():
    # the clean fixture raises with an f-string inside a loop: allowed
    assert findings_for("r4_clean.py", "R4") == []
    found = findings_for("r4_violation.py", "R4")
    kinds = " / ".join(f.message for f in found)
    assert "logging" in kinds or "log" in kinds
    assert "json" in kinds
    assert "f-string" in kinds
    assert "repr" in kinds


def test_r4_rows_loop_sub_check():
    # the clean fixture hoists .rows into a local (sanctioned fallback)
    # and uses comprehensions at the boundary: both must pass
    assert findings_for("r4_rows_clean.py", "R4") == []
    found = findings_for("r4_rows_violation.py", "R4")
    assert {f.line for f in found} == {9, 17, 25}
    assert all("iterates a .rows attribute" in f.message for f in found)


def test_r5_ignores_canonical_total_seconds_receivers():
    assert findings_for("r5_clean.py", "R5") == []
    found = findings_for("r5_violation.py", "R5")
    assert {f.line for f in found} == {6, 10}


def _by_line(found: list[Finding]) -> dict[int, Finding]:
    return {f.line: f for f in found}


def test_r6_flags_each_seeded_flow_at_its_sink_line():
    found = _by_line(findings_for("r6_violation.py", "R6"))
    # line 8: LCT.members -> encode_upload; line 9: the tainted payload
    # travels on into the channel; line 15: credential -> event log;
    # line 28: error text through the frame_reject summary; line 36:
    # error text into a boundary exception.
    assert set(found) == {8, 9, 15, 28, 36}
    assert "plaintext label values" in found[8].message
    assert "'encode_upload'" in found[8].message
    assert "a credential" in found[15].message
    assert "JSONL event log" in found[15].message
    assert "via 'frame_reject'" in found[28].message
    assert "internal exception text" in found[36].message
    assert "'GatewayError'" in found[36].message


def test_r6_sanitizers_and_allowed_sinks_stay_silent():
    # the clean fixture exercises group_of (sanitizer), len (neutral),
    # encode_gateway_hello (allows=secret), and type(exc).__name__
    assert findings_for("r6_clean.py", "R6") == []


def test_r7_flags_each_blocking_shape_at_its_line():
    found = _by_line(findings_for("r7_violation.py", "R7"))
    assert set(found) == {16, 17, 18, 25, 30, 34}
    assert "time.sleep" in found[16].message
    assert "open()" in found[17].message
    assert "Future.result()" in found[18].message
    assert "reachable from async 'serve'" in found[25].message
    assert ".join()" in found[34].message
    # the hot-kernel heuristic is WARNING; everything else is ERROR
    assert found[30].severity is Severity.WARNING
    assert all(
        f.severity is Severity.ERROR
        for line, f in found.items()
        if line != 30
    )


def test_r7_executor_dispatch_and_str_join_stay_silent():
    assert findings_for("r7_clean.py", "R7") == []


def test_r8_flags_each_contract_break_at_its_line():
    found = findings_for("r8_violation.py", "R8")
    by_line: dict[int, list[Finding]] = {}
    for f in found:
        by_line.setdefault(f.line, []).append(f)
    assert set(by_line) == {11, 20, 28, 39, 51, 59, 61}
    # encode_ping: one-sided AND unregistered (two findings, one line)
    ping = " / ".join(f.message for f in by_line[11])
    assert "no matching decode_ping" in ping
    assert "not registered in CODEC_TABLE" in ping
    assert "outside a try/except envelope" in by_line[20][0].message
    assert "does not cover _DECODE_ERRORS" in by_line[28][0].message
    assert by_line[39][0].severity is Severity.INFO
    assert "malformed" in by_line[39][0].message
    assert "ProtocolError envelope" in by_line[51][0].message
    assert "'heartbeat'" in by_line[59][0].message
    assert "'pong'" in by_line[61][0].message


def test_r8_registered_enveloped_codecs_stay_silent():
    assert findings_for("r8_clean.py", "R8") == []


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
def test_suppression_comment_silences_one_rule(tmp_path):
    source = fixture("r3_violation.py").read_text(encoding="utf-8")
    source = source.replace(
        "self._entries.append(value)  # no lock held",
        "self._entries.append(value)  # lint: ignore[R3]",
    )
    path = tmp_path / "suppressed.py"
    path.write_text(source, encoding="utf-8")
    lines = {f.line for f in lint_file(path, rules=[get_rule("R3")])}
    assert 14 not in lines and lines  # that one silenced, others remain


def test_skip_file_comment_silences_everything(tmp_path):
    source = "# lint: skip-file\n" + fixture("r4_violation.py").read_text(
        encoding="utf-8"
    )
    path = tmp_path / "skipped.py"
    path.write_text(source, encoding="utf-8")
    assert lint_file(path) == []


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n", encoding="utf-8")
    found = lint_file(path)
    assert [f.rule for f in found] == [PARSE_ERROR_RULE]


def test_fixture_directory_is_skipped_by_directory_walk():
    walked = list(iter_python_files([str(REPO / "tests")]))
    assert not any("lint_fixtures" in p.parts for p in walked)
    # ... but explicit files are always linted
    assert lint_file(fixture("r1_violation.py"))


def test_rule_registry_is_complete_and_ordered():
    assert rule_ids() == list(RULE_IDS)
    for rule in all_rules():
        described = rule.describe()
        assert described["id"] and described["hint"] and described["doc"]


# ----------------------------------------------------------------------
# meta-invariants (the PR's acceptance criteria)
# ----------------------------------------------------------------------
def test_repo_source_tree_is_lint_clean():
    result = lint_paths([str(REPO / "src")])
    assert result.files_checked > 80
    assert result.ok, "\n".join(
        f"{f.location} [{f.rule}] {f.message}" for f in result.findings
    )


def test_tests_and_benchmarks_are_lint_clean():
    result = lint_paths([str(REPO / "tests"), str(REPO / "benchmarks")])
    assert result.ok, "\n".join(
        f"{f.location} [{f.rule}] {f.message}" for f in result.findings
    )


def _spans_used_in_tree() -> set[str]:
    """Every span name library code opens, resolved through the AST.

    Mirrors R2's extraction: for each ``.span(...)`` call under
    ``src/repro``, resolve the first argument — a ``names.X`` /
    ``name-constant`` attribute, a local uppercase constant, or (in
    exempt modules) a string literal — to its string value.
    """
    used: set[str] = set()
    for path in iter_python_files([str(REPO / "src" / "repro")]):
        info = ModuleInfo.parse(path)
        constants: dict[str, set[str]] = {}
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            resolved: set[str] = set()
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                resolved = {value.value}
            elif isinstance(value, ast.Subscript):
                # e.g. span_name = names.NETWORK_SPANS[direction] — the
                # runtime key is opaque; count the whole table as used.
                table = value.value
                if (
                    isinstance(table, ast.Attribute)
                    and table.attr == "NETWORK_SPANS"
                ) or (isinstance(table, ast.Name) and table.id == "NETWORK_SPANS"):
                    resolved = set(names.NETWORK_SPANS.values())
            if resolved:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = resolved
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SPAN_CALL_ATTRS
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                used.add(arg.value)
            elif isinstance(arg, ast.Attribute):
                value = getattr(names, arg.attr, None)
                if isinstance(value, str):
                    used.add(value)
            elif isinstance(arg, ast.Name):
                if arg.id in constants:
                    used.update(constants[arg.id])
                else:
                    value = getattr(names, arg.id, None)
                    if isinstance(value, str):
                        used.add(value)
            elif isinstance(arg, ast.Subscript):
                # names.NETWORK_SPANS[direction]: contributes the table
                sub = arg.value
                if isinstance(sub, ast.Attribute) and sub.attr == "NETWORK_SPANS":
                    used.update(names.NETWORK_SPANS.values())
                elif isinstance(sub, ast.Name) and sub.id == "NETWORK_SPANS":
                    used.update(names.NETWORK_SPANS.values())
    return used


def test_all_spans_matches_span_names_opened_in_codebase():
    """``names.ALL_SPANS`` is exactly the set of spans the code opens.

    A span constant nobody opens is dead taxonomy; a span opened under
    a name missing from ``ALL_SPANS`` silently vanishes from the event
    log's allowlist.  Both directions must be empty.
    """
    used = _spans_used_in_tree()
    # span names resolved through a local variable the extractor cannot
    # follow would show up here — keep the sets exactly equal instead
    # of subset-checking so that failure mode is loud.
    declared = set(names.ALL_SPANS)
    assert used == declared, (
        f"opened but undeclared: {sorted(used - declared)}; "
        f"declared but never opened: {sorted(declared - used)}"
    )


def test_dotted_spans_cover_every_namespaced_name():
    assert DOTTED_SPANS == {v for v in names.ALL_SPANS if "." in v}


def _codec_basenames(path: Path, prefix: str) -> set[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return {
        node.name[len(prefix):]
        for node in tree.body
        if isinstance(node, ast.FunctionDef) and node.name.startswith(prefix)
    }


def test_codec_registries_agree_everywhere():
    """R8's CODEC_TABLE == protocol.py's codecs == the fuzz suite's DECODERS.

    Three places list the protocol's codecs: the encode_*/decode_*
    functions themselves, R8's ``CODEC_TABLE`` (the lint registry),
    and ``DECODERS`` in ``tests/test_protocol_malformed.py`` (the fuzz
    registry).  If they ever disagree, a codec exists that is either
    unlinted or unfuzzed.
    """
    from repro.analysis.rules.protocol_invariants import (
        CODEC_TABLE,
        ENVELOPE_BASENAMES,
    )

    protocol = REPO / "src" / "repro" / "core" / "protocol.py"
    encoders = _codec_basenames(protocol, "encode_")
    decoders = _codec_basenames(protocol, "decode_")
    json_codecs = (encoders | decoders) - ENVELOPE_BASENAMES
    assert json_codecs == set(CODEC_TABLE)
    assert sorted(CODEC_TABLE) == list(CODEC_TABLE), "keep the table sorted"

    fuzz = ast.parse(
        (REPO / "tests" / "test_protocol_malformed.py").read_text(
            encoding="utf-8"
        )
    )
    fuzz_keys: set[str] = set()
    for node in ast.walk(fuzz):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "DECODERS"
                for t in node.targets
            )
            and isinstance(node.value, ast.Dict)
        ):
            fuzz_keys = {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant)
            }
    assert fuzz_keys == set(CODEC_TABLE), (
        "tests/test_protocol_malformed.py DECODERS is out of sync with "
        "R8's CODEC_TABLE"
    )
