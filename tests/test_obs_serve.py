"""Telemetry exposition endpoint: /metrics, /healthz, /readyz, /traces."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import SystemConfig
from repro.core.options import QueryOptions
from repro.core.system import PrivacyPreservingSystem
from repro.graph.generators import example_query, example_social_network
from repro.obs import (
    MetricsRegistry,
    Observability,
    TelemetryServer,
    TraceRing,
)
from repro.obs.exporters import PROM_LINE_RE


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestTraceRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_push_and_snapshot_with_eviction(self):
        ring = TraceRing(capacity=2)
        for i in range(3):
            ring.push(None, query_id=f"q-{i}", matches=i)
        assert len(ring) == 2
        assert ring.pushed == 3
        snapshot = ring.snapshot()
        assert [doc["query_id"] for doc in snapshot] == ["q-1", "q-2"]
        assert snapshot[1]["matches"] == 2
        assert snapshot[0]["spans"] == []

    def test_find_returns_newest_entry_for_query_id(self):
        ring = TraceRing(capacity=4)
        ring.push(None, query_id="q-1", matches=1)
        ring.push(None, query_id="q-2", matches=2)
        ring.push(None, query_id="q-1", matches=3)
        entry = ring.find("q-1")
        assert entry is not None
        assert entry["matches"] == 3  # newest wins
        assert ring.find("q-2")["matches"] == 2
        assert ring.find("q-missing") is None

    def test_find_after_eviction(self):
        ring = TraceRing(capacity=1)
        ring.push(None, query_id="q-old")
        ring.push(None, query_id="q-new")
        assert ring.find("q-old") is None
        assert ring.find("q-new") is not None

    def test_push_retains_span_documents(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2)
        )
        outcome = system.query(example_query())
        ring = TraceRing()
        ring.push(outcome.trace, query_id=outcome.query_id)
        doc = ring.snapshot()[0]
        assert doc["total_seconds"] == pytest.approx(
            outcome.trace.total_seconds
        )
        assert {span["query_id"] for span in doc["spans"]} == {
            outcome.query_id
        }


class TestEndpoints:
    def test_metrics_healthz_traces_and_404(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", "queries").inc(2)
        ring = TraceRing()
        ring.push(None, query_id="q-1")
        with TelemetryServer(
            registry, traces=ring, health=lambda: {"extra": 1}
        ) as server:
            status, body = _get(server.url + "/metrics")
            assert status == 200
            assert "repro_queries_total 2" in body
            for line in body.strip().splitlines():
                assert PROM_LINE_RE.match(line), f"unparseable: {line!r}"

            status, body = _get(server.url + "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["status"] == "ok"
            assert health["queries_total"] == 2.0
            assert health["extra"] == 1
            assert health["uptime_seconds"] >= 0.0

            status, body = _get(server.url + "/traces")
            doc = json.loads(body)
            assert status == 200 and doc["count"] == 1
            assert doc["traces"][0]["query_id"] == "q-1"

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_trace_lookup_by_query_id(self):
        ring = TraceRing()
        ring.push(None, query_id="q-7", matches=4)
        ring.push(None, query_id="q-8", matches=5)
        with TelemetryServer(MetricsRegistry(), traces=ring) as server:
            status, body = _get(server.url + "/traces/q-7")
            doc = json.loads(body)
            assert status == 200
            assert doc["query_id"] == "q-7"
            assert doc["matches"] == 4

    def test_trace_lookup_unknown_id_is_json_404(self):
        ring = TraceRing()
        ring.push(None, query_id="q-7")
        with TelemetryServer(MetricsRegistry(), traces=ring) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/traces/q-unknown")
            assert excinfo.value.code == 404
            doc = json.loads(excinfo.value.read().decode("utf-8"))
            assert doc["query_id"] == "q-unknown"
            assert doc["retained"] == 1
            assert "no retained trace" in doc["error"]

    def test_readyz_flips_with_the_callable(self):
        state = {"ready": False}
        with TelemetryServer(
            MetricsRegistry(), ready=lambda: state["ready"]
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/readyz")
            assert excinfo.value.code == 503
            state["ready"] = True
            status, body = _get(server.url + "/readyz")
            assert status == 200 and json.loads(body) == {"ready": True}

    def test_degraded_health_when_extra_callable_raises(self):
        def boom():
            raise RuntimeError("backend gone")

        with TelemetryServer(MetricsRegistry(), health=boom) as server:
            _, body = _get(server.url + "/healthz")
            assert json.loads(body)["status"] == "degraded"

    def test_lifecycle_is_idempotent_and_port_is_bound(self):
        server = TelemetryServer(MetricsRegistry())
        assert not server.running
        server.start()
        try:
            assert server.running and server.port > 0
            assert server.start() is server  # idempotent
        finally:
            server.stop()
            server.stop()  # idempotent
        assert not server.running


class TestScrapeUnderLoad:
    def test_metrics_parse_while_batch_in_flight(self):
        # the acceptance criterion: every /metrics line parses under
        # PROM_LINE_RE while a concurrent batch workload is running.
        graph, schema = example_social_network()
        obs = Observability()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_cache_size=32), obs=obs
        )
        done = threading.Event()

        def workload():
            try:
                for _ in range(4):
                    system.query_batch(
                        [example_query()] * 4, options=QueryOptions(workers=2)
                    )
            finally:
                done.set()

        worker = threading.Thread(target=workload, daemon=True)
        with TelemetryServer(obs.metrics) as server:
            worker.start()
            scrapes = 0
            while not done.is_set() or scrapes == 0:
                status, body = _get(server.url + "/metrics")
                assert status == 200
                for line in body.strip().splitlines():
                    assert PROM_LINE_RE.match(line), f"unparseable: {line!r}"
                scrapes += 1
                if scrapes > 200:  # safety net; never hit in practice
                    break
            worker.join(timeout=30)
        assert done.is_set()
        assert scrapes >= 1
        # the scraped registry really reflected the workload
        assert obs.metrics.counter("queries_total").total == 16.0
