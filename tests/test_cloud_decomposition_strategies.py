"""Tests for the greedy decomposition strategy and its server plumbing."""

import pytest

from repro.anonymize import estimator_from_outsourced
from repro.cloud import (
    CloudServer,
    decompose_query,
    greedy_weighted_vertex_cover,
    is_vertex_cover,
)
from repro.exceptions import QueryError
from repro.matching import find_subgraph_matches, match_key


class TestGreedyCover:
    def test_always_a_cover(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        weights = {v: float(v + 1) for v in range(4)}
        cover = greedy_weighted_vertex_cover(edges, weights)
        assert is_vertex_cover(edges, cover)

    def test_prefers_cheap_high_coverage(self):
        # star centered at 0 with cheap center
        edges = [(0, i) for i in range(1, 5)]
        cover = greedy_weighted_vertex_cover(edges, {0: 1.0, 1: 5.0, 2: 5.0, 3: 5.0, 4: 5.0})
        assert cover == {0}

    def test_no_edges(self):
        assert greedy_weighted_vertex_cover([], {}) == set()


class TestStrategyPlumbing:
    @pytest.fixture
    def setup(self, figure1_pipeline):
        pipe = figure1_pipeline
        estimator = estimator_from_outsourced(
            pipe.outsourced.block_vertices, pipe.outsourced.graph, pipe.transform.k
        )
        return pipe, estimator

    def test_greedy_decomposition_covers(self, setup):
        pipe, estimator = setup
        decomposition = decompose_query(pipe.qo, estimator, strategy="greedy")
        assert decomposition.covers(pipe.qo)

    def test_greedy_cost_at_least_optimal(self, setup):
        pipe, estimator = setup
        optimal = decompose_query(pipe.qo, estimator, strategy="optimal")
        greedy = decompose_query(pipe.qo, estimator, strategy="greedy")
        assert greedy.total_estimated_cost() >= optimal.total_estimated_cost() - 1e-9

    def test_unknown_strategy_rejected(self, setup):
        pipe, estimator = setup
        with pytest.raises(QueryError):
            decompose_query(pipe.qo, estimator, strategy="magic")

    def test_server_with_greedy_strategy_is_exact(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            decomposition_strategy="greedy",
        )
        answer = server.answer(pipe.qo)
        expanded = {
            match_key(m) for m in pipe.transform.avt.expand_matches(answer.matches)
        }
        direct = {
            match_key(m) for m in find_subgraph_matches(pipe.qo, pipe.transform.gk)
        }
        assert expanded == direct

    def test_server_rejects_unknown_strategy(self, figure1_pipeline):
        pipe = figure1_pipeline
        with pytest.raises(ValueError):
            CloudServer(
                pipe.outsourced.graph,
                pipe.transform.avt,
                pipe.outsourced.block_vertices,
                decomposition_strategy="magic",
            )
