"""Tests for the query pattern DSL."""

import pytest

from repro.exceptions import QueryError
from repro.matching import find_subgraph_matches
from repro.query import parse_pattern


class TestParsing:
    def test_single_edge(self):
        parsed = parse_pattern("(a:person)-(b:company)")
        graph = parsed.graph
        assert graph.vertex_count == 2
        assert graph.edge_count == 1
        assert graph.vertex(parsed.vertex_of("a")).vertex_type == "person"
        assert graph.vertex(parsed.vertex_of("b")).vertex_type == "company"

    def test_chain(self):
        parsed = parse_pattern("(a:t)-(b:t)-(c:t)")
        assert parsed.graph.edge_count == 2
        assert parsed.graph.degree(parsed.vertex_of("b")) == 2

    def test_labels(self):
        parsed = parse_pattern("(a:person {gender=male, occupation=engineer|manager})")
        labels = parsed.graph.vertex(parsed.vertex_of("a")).labels
        assert labels["gender"] == frozenset({"male"})
        assert labels["occupation"] == frozenset({"engineer", "manager"})

    def test_reuse_by_name(self):
        parsed = parse_pattern(
            """
            (a:person)-(b:company)
            (a)-(c:school)
            """
        )
        assert parsed.graph.vertex_count == 3
        assert parsed.graph.degree(parsed.vertex_of("a")) == 2

    def test_semicolon_separator_and_comments(self):
        parsed = parse_pattern("# people\n(a:t)-(b:t); (b)-(c:t)")
        assert parsed.graph.vertex_count == 3

    def test_label_merging_across_mentions(self):
        parsed = parse_pattern("(a:t {x=1})-(b:t)\n(a {x=2})-(c:t)")
        labels = parsed.graph.vertex(parsed.vertex_of("a")).labels
        assert labels["x"] == frozenset({"1", "2"})

    def test_whitespace_tolerance(self):
        parsed = parse_pattern("(  a : t  { x = 1 } ) - ( b : t )")
        assert parsed.graph.edge_count == 1


class TestErrors:
    def test_empty_pattern(self):
        with pytest.raises(QueryError):
            parse_pattern("   \n  ")

    def test_unknown_node_reference(self):
        parsed = parse_pattern("(a:t)-(b:t)")
        with pytest.raises(QueryError):
            parsed.vertex_of("zzz")

    def test_untyped_first_mention(self):
        with pytest.raises(QueryError):
            parse_pattern("(a)-(b:t)")

    def test_conflicting_types(self):
        with pytest.raises(QueryError):
            parse_pattern("(a:t1)-(b:t)\n(a:t2)-(b)")

    def test_self_loop(self):
        with pytest.raises(QueryError):
            parse_pattern("(a:t)-(a)")

    def test_malformed_labels(self):
        with pytest.raises(QueryError):
            parse_pattern("(a:t {oops})")
        with pytest.raises(QueryError):
            parse_pattern("(a:t {=v})")
        with pytest.raises(QueryError):
            parse_pattern("(a:t {x=})")

    def test_garbage_between_nodes(self):
        with pytest.raises(QueryError):
            parse_pattern("(a:t) => (b:t)")

    def test_disconnected_pattern(self):
        with pytest.raises(QueryError):
            parse_pattern("(a:t)-(b:t)\n(c:t)-(d:t)")


class TestSemantics:
    def test_figure1_query_via_dsl(self, figure1_graph):
        """The running-example query expressed in the DSL matches G."""
        parsed = parse_pattern(
            """
            (c1:company {company_type=internet})-(p1:person)
            (p1)-(s:school {located_in=illinois})
            (p2:person)-(s)
            (p2)-(c2:company {company_type=software})
            """
        )
        matches = find_subgraph_matches(parsed.graph, figure1_graph)
        assert len(matches) == 2

    def test_dsl_query_through_pipeline(self, figure1_graph, figure1_schema):
        from repro import PrivacyPreservingSystem, SystemConfig

        parsed = parse_pattern(
            "(p:person {gender=male})-(c:company {company_type=internet})"
        )
        system = PrivacyPreservingSystem.setup(
            figure1_graph, figure1_schema, SystemConfig(k=2)
        )
        outcome = system.query(parsed.graph)
        oracle = find_subgraph_matches(parsed.graph, figure1_graph)
        assert len(outcome.matches) == len(oracle) == 1
