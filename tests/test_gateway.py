"""The serving gateway: middleware, admission, coalescing, bit-identity.

The contract under test: a query answered through the TCP gateway is
*byte-identical* (at the ``encode_answer_table`` wire layer) to the
same query answered in-process, for every engine topology; overload
degrades by shedding typed rejects, never by collapsing; and two
identical concurrent requests share one cloud computation.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.cloud import CloudServer, ShardedCloud, fork_available
from repro.core.protocol import (
    FRAME_HEADER,
    decode_frame_header,
    encode_answer_table,
    encode_frame,
    encode_gateway_answer,
    encode_gateway_hello,
    encode_gateway_request,
)
from repro.exceptions import GatewayError, GatewayRejected
from repro.gateway import (
    AdmissionController,
    AdmissionPolicy,
    AuditLogMiddleware,
    AuthTokenMiddleware,
    GatewayClient,
    GatewayRequest,
    GatewayResponse,
    Middleware,
    MiddlewareChain,
    PrivacyBudgetMiddleware,
    QueryCoalescer,
    QueryGateway,
    RateLimitMiddleware,
    SHED_CODES,
    SyncGatewayClient,
    coalesce_key,
    query_signature,
)
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.obs import EventLog, Observability, TraceRing, names
from repro.outsource import build_outsourced_graph
from repro.workloads import random_walk_query


# ----------------------------------------------------------------------
# shared deployment
# ----------------------------------------------------------------------
def deployment(seed: int = 7, n: int = 30, k: int = 2, edges: int = 3):
    schema = make_schema(2, 1, 4)
    graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
    query = random_walk_query(graph, edges, seed=seed + 1)
    transform = build_k_automorphic_graph(graph, k, seed=seed)
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    return SimpleNamespace(
        query=query, avt=transform.avt, outsourced=outsourced
    )


@pytest.fixture(scope="module")
def dep():
    return deployment()


def make_cloud(dep, shards: int = 1, backend: str = "serial"):
    if shards == 1:
        return CloudServer(
            dep.outsourced.graph, dep.avt, dep.outsourced.block_vertices
        )
    return ShardedCloud(
        dep.outsourced.graph,
        dep.avt,
        dep.outsourced.block_vertices,
        shards=shards,
        backend=backend,
    )


def wire_bytes(table, order, expanded) -> bytes:
    return encode_answer_table(table, order, expanded)


def reference_bytes(cloud, query) -> bytes:
    answer = cloud.answer(query)
    return wire_bytes(answer.table, sorted(query.vertex_ids()), answer.expanded)


def request(client="alice", rid="alice-1", queries=(), token="") -> GatewayRequest:
    return GatewayRequest(
        client_id=client, request_id=rid, queries=list(queries), token=token
    )


# ----------------------------------------------------------------------
# middleware chain
# ----------------------------------------------------------------------
class Recorder(Middleware):
    def __init__(self, name: str, log: list, reject: str | None = None):
        self.name = name
        self.log = log
        self.reject = reject

    def on_request(self, req: GatewayRequest) -> None:
        if self.reject is not None:
            raise GatewayRejected(self.reject, "refused", req.request_id)
        self.log.append(("request", self.name))

    def on_response(self, req: GatewayRequest, resp: GatewayResponse) -> None:
        self.log.append(("response", self.name, resp.status))


class TestMiddlewareChain:
    def test_hooks_run_in_order_then_reversed(self):
        log: list = []
        chain = MiddlewareChain(
            [Recorder("a", log), Recorder("b", log), Recorder("c", log)]
        )
        response = chain.process(request(), lambda req: GatewayResponse.ok(1))
        assert response.status == "ok"
        assert log == [
            ("request", "a"),
            ("request", "b"),
            ("request", "c"),
            ("response", "c", "ok"),
            ("response", "b", "ok"),
            ("response", "a", "ok"),
        ]

    def test_rejection_short_circuits_later_middlewares(self):
        log: list = []
        chain = MiddlewareChain(
            [
                Recorder("a", log),
                Recorder("b", log, reject="unauthorized"),
                Recorder("c", log),
            ]
        )
        entered, rejection = chain.before(request())
        assert rejection is not None and rejection.code == "unauthorized"
        assert [m.name for m in entered] == ["a"]
        assert log == [("request", "a")]

    def test_process_reraise_still_audits_entered(self):
        log: list = []
        chain = MiddlewareChain(
            [Recorder("a", log), Recorder("b", log, reject="rate_limited")]
        )
        with pytest.raises(GatewayRejected, match="rate_limited"):
            chain.process(request(), lambda req: GatewayResponse.ok(0))
        assert log == [("request", "a"), ("response", "a", "rate_limited")]

    def test_handler_rejection_reaches_hooks(self):
        log: list = []
        chain = MiddlewareChain([Recorder("a", log)])

        def handler(req):
            raise GatewayRejected("overloaded", "busy", req.request_id)

        with pytest.raises(GatewayRejected, match="overloaded"):
            chain.process(request(), handler)
        assert log == [("request", "a"), ("response", "a", "overloaded")]


class TestStockMiddlewares:
    def test_auth_shared_token(self):
        auth = AuthTokenMiddleware(token="s3cret")
        auth.on_request(request(token="s3cret"))
        with pytest.raises(GatewayRejected, match="unauthorized"):
            auth.on_request(request(token="wrong"))

    def test_auth_per_client_roster(self):
        auth = AuthTokenMiddleware(tokens={"alice": "a", "bob": "b"})
        auth.on_request(request(client="alice", token="a"))
        with pytest.raises(GatewayRejected, match="unauthorized"):
            auth.on_request(request(client="alice", token="b"))
        with pytest.raises(GatewayRejected, match="unauthorized"):
            auth.on_request(request(client="mallory", token="a"))

    def test_auth_requires_exactly_one_config(self):
        with pytest.raises(ValueError):
            AuthTokenMiddleware()
        with pytest.raises(ValueError):
            AuthTokenMiddleware(token="x", tokens={"a": "y"})

    def test_rate_limit_token_bucket(self):
        clock = SimpleNamespace(now=0.0)
        limiter = RateLimitMiddleware(
            rate=1.0, burst=2, clock=lambda: clock.now
        )
        limiter.on_request(request(client="alice"))
        limiter.on_request(request(client="alice"))
        with pytest.raises(GatewayRejected, match="rate_limited"):
            limiter.on_request(request(client="alice"))
        # other clients have their own bucket
        limiter.on_request(request(client="bob"))
        # refill after a second of simulated time
        clock.now = 1.0
        limiter.on_request(request(client="alice"))

    def test_privacy_budget_counts_queries(self, figure1_query):
        budget = PrivacyBudgetMiddleware(budget=3)
        budget.on_request(request(queries=[figure1_query] * 2))
        assert budget.remaining("alice") == 1
        with pytest.raises(GatewayRejected, match="budget_exhausted"):
            budget.on_request(request(queries=[figure1_query] * 2))
        budget.on_request(request(queries=[figure1_query]))
        assert budget.remaining("alice") == 0

    def test_audit_log_emits_jsonl(self, tmp_path, figure1_query):
        path = tmp_path / "audit.jsonl"
        events = EventLog(path)
        chain = MiddlewareChain([AuditLogMiddleware(events)])
        chain.process(
            request(queries=[figure1_query]),
            lambda req: GatewayResponse.ok(1),
        )
        with pytest.raises(GatewayRejected):
            chain.process(
                request(rid="alice-2"),
                lambda req: (_ for _ in ()).throw(
                    GatewayRejected("overloaded", "busy")
                ),
            )
        events.close()
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert [r["event"] for r in records] == [names.GATEWAY_REQUEST] * 2
        assert records[0]["status"] == "ok"
        assert records[0]["client_id"] == "alice"
        assert records[1]["status"] == "overloaded"


# ----------------------------------------------------------------------
# admission + coalescing units
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(slo_seconds=-1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(slo_quantile=1.5)

    def test_global_cap_sheds_overloaded(self):
        control = AdmissionController(AdmissionPolicy(max_inflight=2))
        control.admit("a")
        control.admit("b")
        with pytest.raises(GatewayRejected, match="overloaded"):
            control.admit("c")
        control.release("a")
        control.admit("c")

    def test_per_client_cap_sheds_queue_full(self):
        control = AdmissionController(
            AdmissionPolicy(max_inflight=10, max_client_inflight=1)
        )
        control.admit("alice")
        with pytest.raises(GatewayRejected, match="queue_full"):
            control.admit("alice")
        control.admit("bob")  # other clients unaffected
        control.release("alice")
        control.admit("alice")

    def test_shed_probe_refuses_before_caps(self):
        control = AdmissionController(
            AdmissionPolicy(max_inflight=10), shed_probe=lambda: True
        )
        with pytest.raises(GatewayRejected) as info:
            control.admit("alice")
        assert info.value.code == "overloaded"
        assert info.value.code in SHED_CODES

    def test_inflight_accounting(self):
        control = AdmissionController()
        control.admit("alice")
        control.admit("alice")
        control.admit("bob")
        assert control.inflight() == 3
        assert control.inflight("alice") == 2
        control.release("alice")
        assert control.inflight("alice") == 1


class TestCoalescer:
    def test_signature_is_structural(self, dep):
        other = deployment()  # fresh, structurally identical objects
        assert query_signature(dep.query) == query_signature(other.query)
        different = deployment(seed=99)
        assert query_signature(dep.query) != query_signature(different.query)

    def test_lease_and_complete(self, dep):
        coalescer = QueryCoalescer()
        key = coalesce_key([dep.query])
        leader, future = coalescer.lease(key)
        assert leader
        follower, shared = coalescer.lease(key)
        assert not follower
        assert shared is future
        future.set_result(["answer"])
        coalescer.complete(key)
        assert coalescer.inflight_count() == 0
        leader, _ = coalescer.lease(key)  # key reusable after completion
        assert leader


# ----------------------------------------------------------------------
# the gateway over real sockets
# ----------------------------------------------------------------------
TOPOLOGIES = [
    ("serial", 1),
    ("serial", 4),
    ("thread", 4),
    pytest.param(
        "process",
        4,
        marks=pytest.mark.skipif(
            not fork_available(), reason="fork start method required"
        ),
    ),
]


class CountingCloud:
    """Wraps an engine; counts and slows ``answer`` calls."""

    def __init__(self, inner, delay: float = 0.0):
        self._inner = inner
        self._delay = delay
        self._lock = threading.Lock()
        self.calls = 0

    def answer(self, query, obs=None, **kwargs):
        with self._lock:
            self.calls += 1
        if self._delay:
            time.sleep(self._delay)
        return self._inner.answer(query, obs=obs, **kwargs)

    @property
    def avt(self):
        return self._inner.avt


class TestGatewayRoundTrip:
    @pytest.mark.parametrize("backend,shards", TOPOLOGIES)
    def test_bit_identity_across_topologies(self, dep, backend, shards):
        cloud = make_cloud(dep, shards=shards, backend=backend)
        expected = reference_bytes(cloud, dep.query)
        with QueryGateway(cloud) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="matrix"
            ) as client:
                table, expanded = client.query(dep.query)
        order = sorted(dep.query.vertex_ids())
        assert wire_bytes(table, order, expanded) == expected
        if hasattr(cloud, "close"):
            cloud.close()

    def test_many_concurrent_queries_zero_drops(self, dep):
        cloud = make_cloud(dep)
        expected = reference_bytes(cloud, dep.query)
        order = sorted(dep.query.vertex_ids())
        policy = AdmissionPolicy(max_inflight=64, max_client_inflight=64)

        async def main():
            async with GatewayClient(
                "127.0.0.1", gateway.port, client_id="herd"
            ) as client:
                return await asyncio.gather(
                    *(client.query(dep.query) for _ in range(20))
                )

        with QueryGateway(cloud, policy=policy) as gateway:
            answers = asyncio.run(main())
        assert len(answers) == 20
        for table, expanded in answers:
            assert wire_bytes(table, order, expanded) == expected

    def test_coalescing_shares_one_computation(self, dep):
        counting = CountingCloud(make_cloud(dep), delay=0.3)

        async def main():
            async with GatewayClient(
                "127.0.0.1", gateway.port, client_id="dup"
            ) as client:
                return await asyncio.gather(
                    client.query(dep.query), client.query(dep.query)
                )

        obs = Observability()
        with QueryGateway(counting, obs=obs) as gateway:
            (t1, e1), (t2, e2) = asyncio.run(main())
        order = sorted(dep.query.vertex_ids())
        assert wire_bytes(t1, order, e1) == wire_bytes(t2, order, e2)
        assert counting.calls == 1
        coalesced = obs.metrics.counter(names.M_GATEWAY_COALESCED)
        assert coalesced.total == 1

    def test_distinct_queries_do_not_coalesce(self, dep):
        other = deployment(seed=99)
        counting = CountingCloud(make_cloud(dep), delay=0.2)

        async def main():
            async with GatewayClient(
                "127.0.0.1", gateway.port, client_id="mix"
            ) as client:
                return await asyncio.gather(
                    client.query(dep.query), client.query(other.query)
                )

        with QueryGateway(counting) as gateway:
            answers = asyncio.run(main())
        assert len(answers) == 2
        assert counting.calls == 2


class TestDistributedTracing:
    """Context propagation over the wire and cross-process stitching."""

    def test_traced_and_untraced_answers_are_identical(self, dep):
        cloud = make_cloud(dep)
        order = sorted(dep.query.vertex_ids())
        with QueryGateway(cloud, obs=Observability()) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="pair"
            ) as client:
                plain = client.submit([dep.query])
                traced = client.submit_traced([dep.query])
        plain_table, plain_expanded = plain[0]
        traced_table, traced_expanded = traced.answers[0]
        assert wire_bytes(plain_table, order, plain_expanded) == wire_bytes(
            traced_table, order, traced_expanded
        )

    def test_contextless_request_gets_pre_trace_answer_bytes(self, dep):
        """An old client (no ctx field) receives the exact answer frame
        bytes a pre-context gateway produced — the trace key is only
        ever added for requests that asked for it."""
        cloud = make_cloud(dep)
        reference = cloud.answer(dep.query)
        order = sorted(dep.query.vertex_ids())
        expected = encode_gateway_answer(
            "old-1", [(reference.table, order, reference.expanded)]
        )

        async def main():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )

            async def read_frame():
                header = await reader.readexactly(FRAME_HEADER.size)
                kind, length = decode_frame_header(header)
                payload = await reader.readexactly(length) if length else b""
                return kind, payload

            writer.write(encode_frame("hello", encode_gateway_hello("old")))
            await writer.drain()
            await read_frame()  # hello ack
            writer.write(
                encode_frame(
                    "request", encode_gateway_request("old-1", [dep.query])
                )
            )
            await writer.drain()
            kind, payload = await read_frame()
            writer.close()
            await writer.wait_closed()
            return kind, payload

        # tracing is fully enabled server-side; the answer must still
        # be byte-identical because no context was propagated.
        with QueryGateway(cloud, obs=Observability()) as gateway:
            kind, payload = asyncio.run(main())
        assert kind == "answer"
        assert payload == expected
        assert b'"trace"' not in payload

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method required"
    )
    def test_stitched_trace_chains_every_span_to_client_root(self, dep):
        """The acceptance walk: gateway, dispatch, cloud, per-shard and
        fork-child spans all resolve parent links up to the client's
        ``client.submit`` root span, with unique span ids and spans
        from more than one OS process."""
        cloud = make_cloud(dep, shards=2, backend="process")
        obs = Observability()
        with QueryGateway(cloud, obs=obs) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="walker"
            ) as client:
                traced = client.submit_traced([dep.query])
        cloud.close()

        trace = traced.trace
        assert trace is not None and len(trace) > 0
        by_id = {span.span_id: span for span in trace}
        assert len(by_id) == len(trace)  # no span-id collisions
        root = trace.first(names.CLIENT_SUBMIT)
        assert root is not None and root.parent_id is None
        for span in trace:
            hops, current = 0, span
            while current.parent_id is not None:
                assert current.parent_id in by_id, (
                    f"{current.name} has unresolvable parent "
                    f"{current.parent_id}"
                )
                current = by_id[current.parent_id]
                hops += 1
                assert hops <= len(trace)  # cycle guard
            assert current.span_id == root.span_id, (
                f"{span.name} does not chain to the client root"
            )
        # every serving layer contributed spans
        assert trace.first(names.GATEWAY_REQUEST) is not None
        assert trace.first(names.GATEWAY_DISPATCH) is not None
        assert trace.first(names.CLOUD_ANSWER) is not None
        shard_spans = trace.named(names.CLOUD_SHARD_MATCH)
        assert len(shard_spans) == 2
        assert {s.attributes.get("shard") for s in shard_spans} == {0, 1}
        # fork children really ran elsewhere: more than one pid
        assert len({span.pid for span in trace if span.pid}) >= 2
        # one query id stamps the whole tree (client, gateway, shards)
        stamped = {span.query_id for span in trace if span.query_id}
        assert stamped == {traced.query_id}

    def test_traced_request_accounts_trace_bytes(self, dep):
        cloud = make_cloud(dep)
        obs = Observability()
        with QueryGateway(cloud, obs=obs) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="acct"
            ) as client:
                traced = client.submit_traced([dep.query])
        assert traced.trace is not None
        counter = obs.metrics.counter(names.M_TRACE_BYTES)
        assert counter.value(direction="gateway_answer") > 0

    def test_gateway_retains_trace_in_ring_by_query_id(self, dep):
        cloud = make_cloud(dep)
        ring = TraceRing()
        with QueryGateway(
            cloud, obs=Observability(), traces=ring
        ) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="ring"
            ) as client:
                traced = client.submit_traced([dep.query])
            # the push happens just after the answer frame is sent
            deadline = time.monotonic() + 5.0
            while (
                ring.find(traced.query_id) is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        entry = ring.find(traced.query_id)
        assert entry is not None
        assert entry["query_id"] == traced.query_id
        assert entry["spans"]
        assert ring.find("no-such-query") is None


class TestGatewayShedding:
    def test_saturated_window_sheds_with_typed_reject(self, dep):
        cloud = make_cloud(dep)
        obs = Observability()
        policy = AdmissionPolicy(
            slo_seconds=0.01, slo_quantile=0.5, min_window_count=1
        )
        with QueryGateway(cloud, policy=policy, obs=obs) as gateway:
            for _ in range(8):
                gateway.window.observe(1.0)  # tail far over the SLO
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="shed"
            ) as client:
                with pytest.raises(GatewayRejected) as info:
                    client.query(dep.query)
        assert info.value.code == "overloaded"
        assert info.value.code in SHED_CODES
        shed = obs.metrics.counter(names.M_GATEWAY_SHED)
        assert shed.value(reason="overloaded") == 1
        requests = obs.metrics.counter(names.M_GATEWAY_REQUESTS)
        assert requests.value(status="overloaded") == 1

    def test_connection_survives_a_shed(self, dep):
        cloud = make_cloud(dep)
        expected = reference_bytes(cloud, dep.query)
        order = sorted(dep.query.vertex_ids())
        policy = AdmissionPolicy(
            slo_seconds=10.0, slo_quantile=0.5, min_window_count=1
        )
        with QueryGateway(cloud, policy=policy) as gateway:
            gateway.window.observe(100.0)
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="retry"
            ) as client:
                with pytest.raises(GatewayRejected):
                    client.query(dep.query)
                # load drains: the same connection serves the retry
                gateway.window.observe(0.001)
                for _ in range(40):
                    gateway.window.observe(0.001)
                table, expanded = client.query(dep.query)
        assert wire_bytes(table, order, expanded) == expected


class TestGatewayPolicyOverWire:
    def test_auth_token_enforced_per_request(self, dep):
        cloud = make_cloud(dep)
        middlewares = [AuthTokenMiddleware(token="letmein")]
        with QueryGateway(cloud, middlewares=middlewares) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="ok", token="letmein"
            ) as client:
                table, _ = client.query(dep.query)
                assert len(table.schema) > 0
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="bad", token="nope"
            ) as client:
                with pytest.raises(GatewayRejected) as info:
                    client.query(dep.query)
        assert info.value.code == "unauthorized"

    def test_privacy_budget_exhausts_over_wire(self, dep):
        cloud = make_cloud(dep)
        middlewares = [PrivacyBudgetMiddleware(budget=2)]
        with QueryGateway(cloud, middlewares=middlewares) as gateway:
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="spender"
            ) as client:
                client.query(dep.query)
                client.query(dep.query)
                with pytest.raises(GatewayRejected) as info:
                    client.query(dep.query)
        assert info.value.code == "budget_exhausted"

    def test_garbage_frames_get_bad_request(self, dep):
        cloud = make_cloud(dep)

        async def main():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b"\x00" * 32)
            await writer.drain()
            data = await reader.read(4096)
            writer.close()
            await writer.wait_closed()
            return data

        with QueryGateway(cloud) as gateway:
            data = asyncio.run(main())
        assert b"bad_request" in data

    def test_channel_totals_roll_up_on_disconnect(self, dep):
        cloud = make_cloud(dep)
        with QueryGateway(cloud) as gateway:
            assert gateway.channel.total_bytes() == 0
            with SyncGatewayClient(
                gateway.host, gateway.port, client_id="acct"
            ) as client:
                client.query(dep.query)
            deadline = time.monotonic() + 5.0
            while (
                gateway.channel.total_bytes() == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        queried = gateway.channel.total_bytes("gateway_query")
        answered = gateway.channel.total_bytes("gateway_answer")
        assert queried > 0
        assert answered > 0

    def test_connect_to_dead_port_raises_gateway_error(self):
        async def main():
            client = GatewayClient("127.0.0.1", 1)  # nothing listens here
            await client.connect()

        with pytest.raises(GatewayError, match="cannot reach gateway"):
            asyncio.run(main())
