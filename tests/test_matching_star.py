"""Unit tests for star graphs and decompositions."""

import pytest

from repro.exceptions import QueryError
from repro.graph import example_query
from repro.matching import Decomposition, Star, star_as_graph, star_of


class TestStarOf:
    def test_star_contains_all_adjacent_edges(self):
        query = example_query()
        star = star_of(query, 1)  # person adjacent to company 0 and school 2
        assert star.center == 1
        assert star.leaves == (0, 2)
        assert star.edge_set == {(0, 1), (1, 2)}

    def test_unknown_center_raises(self):
        with pytest.raises(QueryError):
            star_of(example_query(), 99)

    def test_vertex_order_center_first(self):
        star = Star(center=3, leaves=(1, 5))
        assert star.vertex_order == [3, 1, 5]

    def test_overlaps(self):
        star = Star(center=3, leaves=(1, 5))
        assert star.overlaps({1})
        assert star.overlaps({3})
        assert not star.overlaps({2, 7})


class TestStarAsGraph:
    def test_materialized_star_shape(self):
        query = example_query()
        graph = star_as_graph(query, star_of(query, 1))
        assert graph.vertex_count == 3
        assert graph.edge_count == 2
        assert graph.degree(1) == 2

    def test_leaf_to_leaf_edges_excluded(self):
        from repro.graph import AttributedGraph

        query = AttributedGraph()
        for vid in range(3):
            query.add_vertex(vid, "t")
        query.add_edge(0, 1)
        query.add_edge(0, 2)
        query.add_edge(1, 2)  # leaf-leaf edge for star at 0
        graph = star_as_graph(query, star_of(query, 0))
        assert not graph.has_edge(1, 2)
        assert graph.edge_count == 2

    def test_labels_preserved(self):
        query = example_query()
        graph = star_as_graph(query, star_of(query, 1))
        assert graph.vertex(0).labels == query.vertex(0).labels


class TestDecomposition:
    def test_covers_detects_missing_edge(self):
        query = example_query()
        partial = Decomposition(stars=[star_of(query, 1)])
        assert not partial.covers(query)
        full = Decomposition(stars=[star_of(query, 1), star_of(query, 4)])
        assert full.covers(query)

    def test_total_estimated_cost(self):
        query = example_query()
        decomposition = Decomposition(
            stars=[star_of(query, 1), star_of(query, 4)],
            estimated_sizes={1: 10.0, 4: 5.0, 2: 99.0},
        )
        assert decomposition.total_estimated_cost() == 15.0
