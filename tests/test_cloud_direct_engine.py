"""Tests for the direct (non-star) cloud engine on BAS deployments."""

import pytest

from repro.cloud import CloudServer
from repro.matching import find_subgraph_matches, match_key


@pytest.fixture
def bas_servers(figure1_pipeline):
    pipe = figure1_pipeline
    centers = sorted(pipe.transform.gk.vertex_ids())
    stars = CloudServer(
        pipe.transform.gk, pipe.transform.avt, centers, expand_in_cloud=False
    )
    direct = CloudServer(
        pipe.transform.gk,
        pipe.transform.avt,
        centers,
        expand_in_cloud=False,
        engine="direct",
    )
    return pipe, stars, direct


class TestDirectEngine:
    def test_identical_answers(self, bas_servers):
        pipe, stars, direct = bas_servers
        a = {match_key(m) for m in stars.answer(pipe.qo).matches}
        b = {match_key(m) for m in direct.answer(pipe.qo).matches}
        oracle = {
            match_key(m) for m in find_subgraph_matches(pipe.qo, pipe.transform.gk)
        }
        assert a == b == oracle

    def test_answer_marked_expanded(self, bas_servers):
        pipe, _, direct = bas_servers
        answer = direct.answer(pipe.qo)
        assert answer.expanded
        assert answer.decomposition.stars == []

    def test_matcher_reused_between_queries(self, bas_servers):
        pipe, _, direct = bas_servers
        direct.answer(pipe.qo)
        first = direct._direct_matcher
        direct.answer(pipe.qo)
        assert direct._direct_matcher is first

    def test_direct_engine_rejected_for_go_deployments(self, figure1_pipeline):
        pipe = figure1_pipeline
        with pytest.raises(ValueError):
            CloudServer(
                pipe.outsourced.graph,
                pipe.transform.avt,
                pipe.outsourced.block_vertices,
                expand_in_cloud=True,
                engine="direct",
            )

    def test_unknown_engine_rejected(self, figure1_pipeline):
        pipe = figure1_pipeline
        with pytest.raises(ValueError):
            CloudServer(
                pipe.transform.gk,
                pipe.transform.avt,
                sorted(pipe.transform.gk.vertex_ids()),
                expand_in_cloud=False,
                engine="quantum",
            )

    def test_client_filter_recovers_exact_results(self, bas_servers):
        from repro.client import filter_candidates

        pipe, _, direct = bas_servers
        answer = direct.answer(pipe.qo)
        got = {
            match_key(m)
            for m in filter_candidates(answer.matches, pipe.graph, pipe.query).matches
        }
        assert got == pipe.oracle
