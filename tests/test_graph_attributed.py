"""Unit tests for the attributed graph model."""

import pytest

from repro.exceptions import GraphError
from repro.graph import AttributedGraph, VertexData


def build_path(n: int) -> AttributedGraph:
    graph = AttributedGraph("path")
    for vid in range(n):
        graph.add_vertex(vid, "t")
    for vid in range(n - 1):
        graph.add_edge(vid, vid + 1)
    return graph


class TestVertexOperations:
    def test_add_vertex_stores_payload(self):
        graph = AttributedGraph()
        data = graph.add_vertex(7, "person", {"gender": ["male"]})
        assert data.vertex_id == 7
        assert data.vertex_type == "person"
        assert data.labels == {"gender": frozenset({"male"})}
        assert 7 in graph
        assert graph.vertex_count == 1

    def test_add_vertex_without_labels(self):
        graph = AttributedGraph()
        data = graph.add_vertex(0, "person")
        assert data.labels == {}

    def test_empty_label_sets_are_dropped(self):
        graph = AttributedGraph()
        data = graph.add_vertex(0, "person", {"gender": []})
        assert data.labels == {}

    def test_duplicate_vertex_rejected(self):
        graph = AttributedGraph()
        graph.add_vertex(1, "t")
        with pytest.raises(GraphError):
            graph.add_vertex(1, "t")

    def test_unknown_vertex_lookup_raises(self):
        graph = AttributedGraph()
        with pytest.raises(GraphError):
            graph.vertex(42)
        with pytest.raises(GraphError):
            graph.neighbors(42)

    def test_set_vertex_labels_replaces(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "person", {"gender": ["male"]})
        graph.set_vertex_labels(0, {"gender": ["female"], "occupation": ["hr"]})
        labels = graph.vertex(0).labels
        assert labels["gender"] == frozenset({"female"})
        assert labels["occupation"] == frozenset({"hr"})


class TestEdgeOperations:
    def test_add_edge_is_undirected(self):
        graph = build_path(2)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.edge_count == 1

    def test_add_edge_twice_returns_false(self):
        graph = build_path(2)
        assert graph.add_edge(1, 0) is False
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        graph = build_path(1)
        with pytest.raises(GraphError):
            graph.add_edge(0, 0)

    def test_edge_to_missing_vertex_rejected(self):
        graph = build_path(1)
        with pytest.raises(GraphError):
            graph.add_edge(0, 99)

    def test_remove_edge(self):
        graph = build_path(3)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.edge_count == 1
        with pytest.raises(GraphError):
            graph.remove_edge(0, 1)

    def test_edges_iterates_each_once(self):
        graph = build_path(4)
        assert sorted(graph.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_degree_and_average_degree(self):
        graph = build_path(3)
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2
        assert graph.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty_graph(self):
        assert AttributedGraph().average_degree() == 0.0


class TestStructureHelpers:
    def test_connectivity(self):
        graph = build_path(5)
        assert graph.is_connected()
        graph.add_vertex(99, "t")
        assert not graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert AttributedGraph().is_connected()

    def test_connected_components(self):
        graph = build_path(3)
        graph.add_vertex(10, "t")
        graph.add_vertex(11, "t")
        graph.add_edge(10, 11)
        components = sorted(graph.connected_components(), key=len)
        assert [len(c) for c in components] == [2, 3]
        assert {10, 11} in components

    def test_induced_subgraph(self):
        graph = build_path(5)
        sub = graph.induced_subgraph([1, 2, 3])
        assert sub.vertex_id_set() == {1, 2, 3}
        assert sorted(sub.edges()) == [(1, 2), (2, 3)]
        # payload preserved
        assert sub.vertex(1).vertex_type == "t"

    def test_copy_is_independent(self):
        graph = build_path(3)
        clone = graph.copy()
        clone.add_edge(0, 2)
        assert not graph.has_edge(0, 2)
        assert clone.has_edge(0, 2)

    def test_relabeled_preserves_structure(self):
        graph = build_path(3)
        mapped = graph.relabeled({0: 10, 1: 11, 2: 12})
        assert sorted(mapped.edges()) == [(10, 11), (11, 12)]
        assert mapped.vertex(10).vertex_type == "t"

    def test_structure_equal(self):
        a = build_path(3)
        b = build_path(3)
        assert a.structure_equal(b)
        b.add_edge(0, 2)
        assert not a.structure_equal(b)

    def test_structure_equal_detects_label_difference(self):
        a = AttributedGraph()
        a.add_vertex(0, "t", {"a": ["x"]})
        b = AttributedGraph()
        b.add_vertex(0, "t", {"a": ["y"]})
        assert not a.structure_equal(b)


class TestVertexMatching:
    def test_matches_requires_same_type(self):
        q = VertexData(0, "person")
        v = VertexData(1, "company")
        assert not q.matches(v)

    def test_matches_label_subset(self):
        q = VertexData(0, "person", {"occupation": frozenset({"hr"})})
        v = VertexData(
            1, "person", {"occupation": frozenset({"hr", "manager"})}
        )
        assert q.matches(v)

    def test_matches_fails_on_missing_label(self):
        q = VertexData(0, "person", {"occupation": frozenset({"hr"})})
        v = VertexData(1, "person", {"occupation": frozenset({"manager"})})
        assert not q.matches(v)

    def test_matches_fails_on_missing_attribute(self):
        q = VertexData(0, "person", {"occupation": frozenset({"hr"})})
        v = VertexData(1, "person", {})
        assert not q.matches(v)

    def test_unconstrained_query_vertex_matches_any_same_type(self):
        q = VertexData(0, "person")
        v = VertexData(1, "person", {"gender": frozenset({"male"})})
        assert q.matches(v)

    def test_label_items_enumerates_pairs(self):
        v = VertexData(0, "t", {"a": frozenset({"x", "y"})})
        assert sorted(v.label_items()) == [("a", "x"), ("a", "y")]
