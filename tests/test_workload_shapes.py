"""Tests for shape-specific query extraction."""

import pytest

from repro.exceptions import QueryError
from repro.graph import grid_graph, make_schema, random_attributed_graph
from repro.matching import has_subgraph_match
from repro.workloads import extract_shape_query


@pytest.fixture(scope="module")
def host_graph():
    schema = make_schema(2, 1, 6)
    return random_attributed_graph(schema, 150, edges_per_vertex=3, seed=13)


class TestShapes:
    @pytest.mark.parametrize("length", [1, 3, 5])
    def test_path(self, host_graph, length):
        query = extract_shape_query(host_graph, "path", length, seed=1)
        assert query.edge_count == length
        assert query.vertex_count == length + 1
        degrees = sorted(query.degree(v) for v in query.vertex_ids())
        assert degrees == [1, 1] + [2] * (length - 1)
        assert has_subgraph_match(query, host_graph)

    @pytest.mark.parametrize("leaves", [2, 4])
    def test_star(self, host_graph, leaves):
        query = extract_shape_query(host_graph, "star", leaves, seed=2)
        assert query.edge_count == leaves
        assert max(query.degree(v) for v in query.vertex_ids()) == leaves
        assert has_subgraph_match(query, host_graph)

    def test_cycle(self, host_graph):
        query = extract_shape_query(host_graph, "cycle", 3, seed=3)
        assert query.edge_count == 3
        assert all(query.degree(v) == 2 for v in query.vertex_ids())
        assert has_subgraph_match(query, host_graph)

    def test_clique(self, host_graph):
        query = extract_shape_query(host_graph, "clique", 3, seed=4)  # triangle
        assert query.edge_count == 3
        assert query.vertex_count == 3
        assert has_subgraph_match(query, host_graph)

    def test_cycle_on_grid(self):
        graph = grid_graph(4, 4)
        query = extract_shape_query(graph, "cycle", 4, seed=1)
        assert query.edge_count == 4
        assert has_subgraph_match(query, graph)


class TestShapeErrors:
    def test_unknown_shape(self, host_graph):
        with pytest.raises(QueryError):
            extract_shape_query(host_graph, "butterfly", 3)

    def test_tiny_cycle_rejected(self, host_graph):
        with pytest.raises(QueryError):
            extract_shape_query(host_graph, "cycle", 2)

    def test_non_triangular_clique_rejected(self, host_graph):
        with pytest.raises(QueryError):
            extract_shape_query(host_graph, "clique", 4)

    def test_absent_shape_raises(self):
        graph = grid_graph(3, 3)  # bipartite: no triangles
        with pytest.raises(QueryError):
            extract_shape_query(graph, "clique", 3, max_attempts=50)


class TestShapesThroughPipeline:
    @pytest.mark.parametrize("shape,size", [("path", 4), ("star", 3), ("cycle", 3)])
    def test_exactness(self, host_graph, shape, size):
        from repro import PrivacyPreservingSystem, SystemConfig
        from repro.graph import schema_from_graph
        from repro.matching import find_subgraph_matches, match_key

        try:
            query = extract_shape_query(host_graph, shape, size, seed=6)
        except QueryError:
            pytest.skip(f"host graph lacks a {shape}/{size}")
        schema = schema_from_graph(host_graph)
        system = PrivacyPreservingSystem.setup(
            host_graph, schema, SystemConfig(k=2)
        )
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, host_graph)}
        assert {match_key(m) for m in outcome.matches} == oracle
