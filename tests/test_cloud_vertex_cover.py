"""Unit tests for the exact weighted vertex cover solver."""

import itertools
import random

import pytest

from repro.cloud import cover_cost, is_vertex_cover, minimum_weighted_vertex_cover


def brute_force_cover(edges, weights):
    vertices = sorted({v for e in edges for v in e})
    best, best_cost = set(vertices), cover_cost(set(vertices), weights)
    for r in range(len(vertices) + 1):
        for combo in itertools.combinations(vertices, r):
            cover = set(combo)
            if is_vertex_cover(edges, cover):
                cost = cover_cost(cover, weights)
                if cost < best_cost:
                    best, best_cost = cover, cost
    return best, best_cost


class TestSmallInstances:
    def test_single_edge_picks_cheaper_endpoint(self):
        cover = minimum_weighted_vertex_cover([(0, 1)], {0: 5.0, 1: 1.0})
        assert cover == {1}

    def test_star_picks_center(self):
        edges = [(0, i) for i in range(1, 6)]
        weights = {v: 1.0 for v in range(6)}
        assert minimum_weighted_vertex_cover(edges, weights) == {0}

    def test_star_avoids_expensive_center(self):
        edges = [(0, 1), (0, 2)]
        weights = {0: 100.0, 1: 1.0, 2: 1.0}
        assert minimum_weighted_vertex_cover(edges, weights) == {1, 2}

    def test_triangle(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        weights = {0: 1.0, 1: 2.0, 2: 3.0}
        cover = minimum_weighted_vertex_cover(edges, weights)
        assert is_vertex_cover(edges, cover)
        assert cover_cost(cover, weights) == 3.0  # {0, 1}

    def test_no_edges(self):
        assert minimum_weighted_vertex_cover([], {}) == set()

    def test_duplicate_and_reversed_edges_collapse(self):
        cover = minimum_weighted_vertex_cover(
            [(0, 1), (1, 0), (0, 1)], {0: 2.0, 1: 1.0}
        )
        assert cover == {1}

    def test_zero_weight_vertices_are_free(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        weights = {0: 1.0, 1: 0.0, 2: 0.0, 3: 1.0}
        cover = minimum_weighted_vertex_cover(edges, weights)
        assert cover_cost(cover, weights) == 0.0


class TestDeterminism:
    """Weight ties must break by vertex id: same input -> same cover."""

    def tie_heavy_instance(self, rng):
        n = rng.randint(5, 10)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.5
        ] or [(0, 1)]
        # few distinct weights -> lots of ties
        weights = {v: float(rng.choice([1.0, 1.0, 2.0])) for v in range(n)}
        return edges, weights

    @pytest.mark.parametrize("trial", range(10))
    def test_repeated_runs_identical(self, trial):
        rng = random.Random(100 + trial)
        edges, weights = self.tie_heavy_instance(rng)
        first = minimum_weighted_vertex_cover(edges, weights)
        for _ in range(5):
            assert minimum_weighted_vertex_cover(edges, weights) == first

    @pytest.mark.parametrize("trial", range(10))
    def test_edge_order_does_not_matter(self, trial):
        rng = random.Random(200 + trial)
        edges, weights = self.tie_heavy_instance(rng)
        reference = minimum_weighted_vertex_cover(edges, weights)
        for shuffle_seed in range(4):
            shuffled = list(edges)
            random.Random(shuffle_seed).shuffle(shuffled)
            # also randomly flip endpoint order
            flipped = [
                (v, u) if random.Random(shuffle_seed + s).random() < 0.5 else (u, v)
                for s, (u, v) in enumerate(shuffled)
            ]
            assert minimum_weighted_vertex_cover(flipped, weights) == reference

    @pytest.mark.parametrize("trial", range(5))
    def test_greedy_is_deterministic_too(self, trial):
        from repro.cloud import greedy_weighted_vertex_cover

        rng = random.Random(300 + trial)
        edges, weights = self.tie_heavy_instance(rng)
        reference = greedy_weighted_vertex_cover(edges, weights)
        for shuffle_seed in range(4):
            shuffled = list(edges)
            random.Random(shuffle_seed).shuffle(shuffled)
            assert greedy_weighted_vertex_cover(shuffled, weights) == reference

    def test_decomposition_plan_is_stable(self, figure1_pipeline):
        """Same query, repeated: identical stars in identical order."""
        from repro.cloud import CloudServer, decompose_query

        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        reference = decompose_query(pipe.qo, server.estimator)
        for _ in range(5):
            again = decompose_query(pipe.qo, server.estimator)
            assert [
                (s.center, tuple(s.leaves)) for s in again.stars
            ] == [(s.center, tuple(s.leaves)) for s in reference.stars]


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(10))
    def test_random_graphs(self, trial):
        rng = random.Random(trial)
        n = rng.randint(4, 9)
        edges = []
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.4:
                    edges.append((u, v))
        if not edges:
            edges = [(0, 1)]
        weights = {v: rng.uniform(0.5, 10.0) for v in range(n)}
        cover = minimum_weighted_vertex_cover(edges, weights)
        _, best_cost = brute_force_cover(edges, weights)
        assert is_vertex_cover(edges, cover)
        assert cover_cost(cover, weights) == pytest.approx(best_cost)
