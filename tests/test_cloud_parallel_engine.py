"""Tests for the parallel batched query engine (ISSUE 1).

Covers: per-query parallel star matching, `CloudServer.query_batch`,
`PrivacyPreservingSystem.query_batch` + `BatchMetrics`, exception
propagation, and a deterministic thread-safety stress test of
concurrent queries sharing one star cache.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    BatchOutcome,
    MethodConfig,
    PrivacyPreservingSystem,
    QueryOptions,
    SystemConfig,
)
from repro.cloud import CloudServer, fork_available
from repro.cloud.parallel import (
    PersistentProcessPool,
    effective_workers,
    map_batch,
    validate_backend,
)
from repro.exceptions import ResultBudgetExceeded
from repro.graph import example_query, example_social_network
from repro.matching import match_key
from repro.workloads import generate_workload, load_dataset


def match_lists(outcomes) -> list[list[tuple]]:
    """Per-query ordered match keys (bit-identity comparison)."""
    return [[match_key(m) for m in outcome.matches] for outcome in outcomes]


@pytest.fixture(scope="module")
def dataset_workload():
    dataset = load_dataset("DBpedia", scale=0.1)
    workload = generate_workload(dataset.graph, 4, 6, seed=7)
    return dataset, workload


def build_system(dataset, workload, **config_kwargs) -> PrivacyPreservingSystem:
    return PrivacyPreservingSystem.setup(
        dataset.graph,
        dataset.schema,
        SystemConfig(k=2, **config_kwargs),
        sample_workload=workload,
    )


class TestPoolHelpers:
    def test_effective_workers_clamps(self):
        assert effective_workers(8, 3) == 3
        assert effective_workers(2, 100) == 2
        assert effective_workers(0, 5) == 1
        assert effective_workers(None, 1) == 1
        assert effective_workers(None, 100) >= 2

    def test_validate_backend(self):
        for backend in ("serial", "thread", "process"):
            assert validate_backend(backend) == backend
        with pytest.raises(ValueError):
            validate_backend("gpu")

    def test_map_batch_preserves_order(self):
        items = list(range(20))
        assert map_batch(lambda x: x * x, items, 4, "thread") == [
            x * x for x in items
        ]
        assert map_batch(lambda x: x + 1, items, 4, "serial") == [
            x + 1 for x in items
        ]

    def test_map_batch_propagates_exceptions(self):
        def boom(x):
            if x == 3:
                raise ValueError("task 3 failed")
            return x

        with pytest.raises(ValueError, match="task 3 failed"):
            map_batch(boom, list(range(6)), 3, "thread")


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
class TestPersistentProcessPool:
    def test_map_preserves_order_across_calls(self):
        with PersistentProcessPool(lambda x: x * x, 2) as pool:
            assert pool.map(list(range(10))) == [x * x for x in range(10)]
            # the same forked children serve every later call
            assert pool.map([7, 3]) == [49, 9]
            assert not pool.closed

    def test_survives_task_exceptions(self):
        def boom(x):
            if x == 2:
                raise ValueError("task 2 failed")
            return x

        with PersistentProcessPool(boom, 2) as pool:
            with pytest.raises(ValueError, match="task 2 failed"):
                pool.map(list(range(4)))
            # a task exception must not poison the pool
            assert pool.map([0, 1]) == [0, 1]

    def test_close_is_idempotent_and_final(self):
        pool = PersistentProcessPool(lambda x: x, 2)
        assert pool.map([1, 2]) == [1, 2]
        pool.close()
        assert pool.closed
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map([3])


class TestParallelStarMatching:
    """star_workers > 1 must be bit-identical to the serial loop."""

    @pytest.mark.parametrize("cache_size", [0, 64])
    def test_parallel_stars_bit_identical(self, dataset_workload, cache_size):
        dataset, workload = dataset_workload
        serial = build_system(dataset, workload, star_cache_size=cache_size)
        parallel = build_system(
            dataset, workload, star_cache_size=cache_size, star_workers=4
        )
        for query in workload:
            a = [match_key(m) for m in serial.query(query).matches]
            b = [match_key(m) for m in parallel.query(query).matches]
            assert a == b

    def test_parallel_stars_on_running_example(self):
        graph, schema = example_social_network()
        serial = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        parallel = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_workers=3)
        )
        query = example_query()
        assert [match_key(m) for m in parallel.query(query).matches] == [
            match_key(m) for m in serial.query(query).matches
        ]

    def test_equivalent_stars_still_share_cache_entries(self):
        """Deduped fan-out: one query's equivalent stars compute once."""
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_cache_size=32, star_workers=4)
        )
        query = example_query()
        system.query(query)
        hits_before, _ = system.cloud.star_cache.counters()
        system.query(query)  # all stars must now be warm
        hits_after, _ = system.cloud.star_cache.counters()
        assert hits_after > hits_before

    def test_star_workers_validation(self):
        with pytest.raises(Exception):
            SystemConfig(k=2, star_workers=-1)


class TestCloudQueryBatch:
    def test_backends_match_serial_loop(self, dataset_workload, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            star_cache_size=32,
        )
        queries = [pipe.qo] * 6
        expected = [[match_key(m) for m in server.answer(q).matches] for q in queries]
        threaded = server.query_batch(queries, max_workers=4, backend="thread")
        assert [[match_key(m) for m in a.matches] for a in threaded] == expected
        serial = server.query_batch(queries, backend="serial")
        assert [[match_key(m) for m in a.matches] for a in serial] == expected

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_process_backend_matches(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            star_cache_size=32,
            star_workers=2,  # exercises the fork-aware pool rebuild
        )
        queries = [pipe.qo] * 4
        expected = [[match_key(m) for m in server.answer(q).matches] for q in queries]
        answers = server.query_batch(queries, max_workers=2, backend="process")
        assert [[match_key(m) for m in a.matches] for a in answers] == expected
        server.close()

    def test_unknown_backend_rejected(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        with pytest.raises(ValueError):
            server.query_batch([pipe.qo], backend="quantum")

    def test_budget_exceeded_propagates_from_batch(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            max_intermediate_results=0,
        )
        with pytest.raises(ResultBudgetExceeded):
            server.query_batch([pipe.qo] * 3, max_workers=2, backend="thread")

    def test_close_is_idempotent(self, figure1_pipeline):
        pipe = figure1_pipeline
        with CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            star_workers=2,
        ) as server:
            server.answer(pipe.qo)
        server.close()  # second close must be a no-op


class TestSystemQueryBatch:
    def test_batch_outcome_shape_and_metrics(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload, star_cache_size=64)
        batch = system.query_batch(
            workload, options=QueryOptions(workers=4, backend="thread")
        )
        assert isinstance(batch, BatchOutcome)
        assert len(batch.outcomes) == len(workload)
        metrics = batch.metrics
        assert metrics.backend == "thread"
        assert metrics.query_count == len(workload)
        assert metrics.worker_count == min(4, len(workload))
        assert metrics.wall_seconds > 0
        assert metrics.throughput_qps > 0
        assert len(metrics.per_query) == len(workload)
        assert metrics.cache_shared is True
        assert metrics.cache_hits + metrics.cache_misses > 0
        assert 0.0 <= metrics.cache_hit_rate <= 1.0
        aggregate = metrics.aggregated()
        assert len(aggregate.runs) == len(workload)

    def test_batch_matches_serial_loop_bit_identical(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload, star_cache_size=64)
        serial = [system.query(q) for q in workload]
        batch = system.query_batch(
            workload, options=QueryOptions(workers=4, backend="thread")
        )
        assert match_lists(batch.outcomes) == match_lists(serial)
        # submission order: per-query metrics line up with the inputs
        for query, outcome in zip(workload, batch.outcomes):
            assert outcome.metrics.query_edges == query.edge_count

    @pytest.mark.parametrize("method", ["EFF", "BAS"])
    def test_methods_agree_across_backends(self, dataset_workload, method):
        dataset, workload = dataset_workload
        system = PrivacyPreservingSystem.setup(
            dataset.graph,
            dataset.schema,
            SystemConfig(
                k=2, method=MethodConfig.from_name(method), star_cache_size=64
            ),
            sample_workload=workload,
        )
        expected = match_lists(
            system.query_batch(
                workload, options=QueryOptions(backend="serial")
            ).outcomes
        )
        threaded = system.query_batch(
            workload, options=QueryOptions(workers=3, backend="thread")
        )
        assert match_lists(threaded.outcomes) == expected

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_process_backend_reports_unshared_cache(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload, star_cache_size=64)
        expected = match_lists(
            system.query_batch(
                workload, options=QueryOptions(backend="serial")
            ).outcomes
        )
        batch = system.query_batch(
            workload[:4], options=QueryOptions(workers=2, backend="process")
        )
        assert match_lists(batch.outcomes) == expected[:4]
        assert batch.metrics.cache_shared is False
        assert batch.metrics.cache_hit_rate is None

    def test_limit_is_honored_in_batches(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload)
        batch = system.query_batch(
            workload, options=QueryOptions(workers=2, max_results=1)
        )
        for outcome in batch.outcomes:
            assert len(outcome.matches) <= 1

    def test_empty_batch(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload)
        batch = system.query_batch([])
        assert batch.outcomes == []
        assert batch.metrics.query_count == 0
        assert batch.metrics.throughput_qps == 0.0


class TestSharedCacheStress:
    """Concurrent queries hammering one cache must be deterministic."""

    def test_stress_batches_are_deterministic(self, dataset_workload):
        dataset, workload = dataset_workload
        system = build_system(dataset, workload, star_cache_size=8)
        # small LRU + repeated workload = constant eviction churn under
        # concurrency; every run must still return identical matches
        stress = (workload * 3)[: max(12, len(workload))]
        reference = match_lists(
            system.query_batch(
                stress, options=QueryOptions(backend="serial")
            ).outcomes
        )
        for round_ in range(3):
            batch = system.query_batch(
                stress, options=QueryOptions(workers=4, backend="thread")
            )
            assert match_lists(batch.outcomes) == reference, f"round {round_}"

    def test_raw_threads_share_one_server(self, figure1_pipeline):
        """Belt and braces: hand-rolled threads, no pool abstraction."""
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            star_cache_size=4,
        )
        expected = [match_key(m) for m in server.answer(pipe.qo).matches]
        errors: list[str] = []
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            for _ in range(10):
                got = [match_key(m) for m in server.answer(pipe.qo).matches]
                if got != expected:  # pragma: no cover - failure path
                    errors.append("diverged")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        hits, misses = server.star_cache.counters()
        assert hits > 0
        assert hits + misses > 0
