"""End-to-end observability: every pipeline phase emits its span.

These tests exercise the tentpole acceptance criteria of the
observability redesign: publish and query traces contain every phase
named in :mod:`repro.obs.names`, nesting survives ``star_workers > 1``
and both batch backends, span durations account for the query wall
time, and the legacy metric views are derivable from the trace alone.
"""

import pytest

from repro import QueryOptions, SystemConfig
from repro.cloud.parallel import fork_available
from repro.core.system import BatchOutcome, PrivacyPreservingSystem, QueryOutcome
from repro.graph import example_query, example_social_network
from repro.matching import match_key
from repro.obs import Observability, QueryMetrics, names


@pytest.fixture(scope="module")
def deployment():
    graph, schema = example_social_network()
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    return system


@pytest.fixture(scope="module")
def outcome(deployment):
    return deployment.query(example_query())


PUBLISH_PHASES = (
    names.PUBLISH,
    names.PUBLISH_LCT,
    names.ANON_GROUPING,
    names.PUBLISH_KAUTO,
    names.KAUTO_PARTITION,
    names.KAUTO_ALIGNMENT,
    names.KAUTO_EDGE_COPY,
    names.PUBLISH_OUTSOURCE,
    names.ENCODE_UPLOAD,
    names.NETWORK_UPLOAD,
    names.CLOUD_INDEX_BUILD,
)

QUERY_PHASES = (
    names.QUERY,
    names.CLIENT_ANONYMIZE,
    names.ENCODE_QUERY,
    names.NETWORK_QUERY,
    names.DECODE_QUERY,
    names.CLOUD_ANSWER,
    names.CLOUD_DECOMPOSE,
    names.CLOUD_STAR_MATCHING,
    names.CLOUD_STAR_MATCH,
    names.CLOUD_JOIN,
    names.ENCODE_ANSWER,
    names.NETWORK_ANSWER,
    names.DECODE_ANSWER,
    names.CLIENT_EXPAND,
    names.CLIENT_FILTER,
)


class TestPublishTrace:
    def test_every_publish_phase_emits_a_span(self, deployment):
        trace = deployment.published.trace
        assert trace is not None
        for name in PUBLISH_PHASES:
            assert trace.first(name) is not None, f"missing span {name!r}"

    def test_publish_metrics_derivable_from_trace(self, deployment):
        from repro.obs import PublishMetrics

        trace = deployment.published.trace
        rebuilt = PublishMetrics.from_trace(trace)
        assert rebuilt == deployment.published.metrics
        assert rebuilt.k == 2
        assert rebuilt.gk_vertices > 0
        assert rebuilt.upload_bytes > 0
        assert rebuilt.index_bytes > 0


class TestQueryTrace:
    def test_every_query_phase_emits_a_span(self, outcome):
        trace = outcome.trace
        assert trace is not None
        for name in QUERY_PHASES:
            assert trace.first(name) is not None, f"missing span {name!r}"

    def test_phases_nest_under_the_query_root(self, outcome):
        trace = outcome.trace
        root = trace.first(names.QUERY)
        assert root.parent_id is None
        for name in QUERY_PHASES[1:]:
            span = trace.first(name)
            assert span.parent_id is not None, f"{name!r} is an orphan"

    def test_span_durations_account_for_wall_time(self, outcome):
        """The direct children of the root cover the root's wall time.

        Phases are sub-millisecond here, so scheduling noise between
        spans can be a visible fraction of the wall — the 20% relative
        tolerance is backed by a 2 ms absolute allowance.
        """
        trace = outcome.trace
        root = trace.first(names.QUERY)
        child_total = sum(s.duration for s in trace.children(root))
        slack = max(root.duration * 0.20, 0.002)
        assert child_total <= root.duration + slack  # children fit inside
        assert child_total >= root.duration - slack  # ... and cover the wall

    def test_metrics_are_a_pure_view_of_the_trace(self, outcome):
        rebuilt = QueryMetrics.from_trace(outcome.trace)
        assert rebuilt == outcome.metrics
        assert rebuilt.cloud_seconds > 0
        assert rebuilt.result_count == len(outcome.matches)
        assert rebuilt.query_bytes > 0 and rebuilt.answer_bytes > 0

    def test_outcome_dict_round_trip(self, outcome):
        restored = QueryOutcome.from_dict(outcome.to_dict())
        assert restored.matches == outcome.matches
        assert restored.metrics == outcome.metrics
        assert len(restored.trace) == len(outcome.trace)


class TestStarWorkerNesting:
    def test_parallel_star_spans_attach_to_star_matching(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, star_workers=4)
        )
        outcome = system.query(example_query())
        trace = outcome.trace
        matching = trace.first(names.CLOUD_STAR_MATCHING)
        stars = trace.named(names.CLOUD_STAR_MATCH)
        assert stars, "no per-star spans recorded"
        assert all(s.parent_id == matching.span_id for s in stars)
        assert all(s.depth == matching.depth + 1 for s in stars)
        # same answers as the serial engine
        serial = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
        expected = serial.query(example_query())
        assert [match_key(m) for m in outcome.matches] == [
            match_key(m) for m in expected.matches
        ]


class TestBatchBackends:
    def _queries(self):
        return [example_query() for _ in range(4)]

    @pytest.mark.parametrize(
        "backend",
        ["serial", "thread"]
        + (["process"] if fork_available() else []),
    )
    def test_each_outcome_has_its_own_trace(self, deployment, backend):
        batch = deployment.query_batch(
            self._queries(), options=QueryOptions(workers=2, backend=backend)
        )
        assert batch.metrics.backend == backend
        for outcome in batch.outcomes:
            trace = outcome.trace
            assert trace is not None
            # exactly one query root each: concurrent queries never
            # interleave spans into one buffer
            roots = [s for s in trace.roots() if s.name == names.QUERY]
            assert len(roots) == 1
            assert trace.first(names.CLOUD_ANSWER) is not None
        batch_span = batch.trace.first(names.BATCH)
        assert batch_span is not None
        assert batch_span.attributes["backend"] == backend
        assert batch_span.attributes["queries"] == 4

    def test_batch_dict_round_trip(self, deployment):
        batch = deployment.query_batch(
            self._queries(), options=QueryOptions(backend="serial")
        )
        restored = BatchOutcome.from_dict(batch.to_dict())
        assert restored.matches == batch.matches
        assert restored.metrics.backend == "serial"
        assert restored.metrics.query_count == 4


class TestDisabledObservability:
    def test_null_scope_answers_without_tracing(self):
        graph, schema = example_social_network()
        obs = Observability.disabled()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2), obs=obs
        )
        outcome = system.query(example_query())
        assert len(outcome.matches) == 2
        assert outcome.trace is None
        assert system.published.trace is None
        # the view over a None trace is all-defaults, not an error
        assert outcome.metrics == QueryMetrics.from_trace(None)

    def test_results_identical_with_and_without_tracing(self, deployment):
        graph, schema = example_social_network()
        silent = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2), obs=Observability.disabled()
        )
        traced = deployment.query(example_query())
        untraced = silent.query(example_query())
        assert [match_key(m) for m in traced.matches] == [
            match_key(m) for m in untraced.matches
        ]


class TestRegistryAggregation:
    def test_system_registry_accumulates_across_queries(self):
        graph, schema = example_social_network()
        obs = Observability()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2), obs=obs
        )
        for _ in range(3):
            system.query(example_query())
        registry = obs.metrics
        assert registry.counter(names.M_QUERIES).total == 3.0
        assert registry.counter(names.M_MATCHES).total == 6.0  # 2 each
        assert registry.counter(names.M_NETWORK_BYTES).total > 0
        assert registry.histogram(names.M_QUERY_SECONDS).count() == 3
        # the star-cache counters are pull-style callbacks
        assert any(
            name in (names.M_CACHE_HITS, names.M_CACHE_MISSES)
            for name, _value, _help in registry.callbacks()
        )
