"""Unit tests for the CloudServer facade (estimators, accounting)."""


from repro.cloud import CloudServer
from repro.graph import AttributedGraph
from repro.matching import find_subgraph_matches, match_key


class TestEstimatorModes:
    def test_go_mode_estimator_uses_block_stats(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
            expand_in_cloud=True,
        )
        estimator = server.estimator
        assert estimator.k == pipe.transform.k
        assert estimator.gk_vertex_count == pipe.transform.k * len(
            pipe.outsourced.block_vertices
        )

    def test_bas_mode_estimator_covers_whole_graph(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.transform.gk,
            pipe.transform.avt,
            sorted(pipe.transform.gk.vertex_ids()),
            expand_in_cloud=False,
        )
        estimator = server.estimator
        assert estimator.k == 1
        assert estimator.gk_vertex_count == pipe.transform.gk.vertex_count


class TestAnswerShapes:
    def test_single_vertex_query(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        query = AttributedGraph()
        query.add_vertex(0, "person")
        answer = server.answer(query)
        block = set(pipe.outsourced.block_vertices)
        person_count = sum(
            1
            for v in block
            if pipe.outsourced.graph.vertex(v).vertex_type == "person"
        )
        assert len(answer.matches) == person_count
        assert all(m[0] in block for m in answer.matches)

    def test_unmatchable_query_returns_empty(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        query = AttributedGraph()
        query.add_vertex(0, "no-such-type")
        query.add_vertex(1, "person")
        query.add_edge(0, 1)
        answer = server.answer(query)
        assert answer.matches == []
        assert answer.rs_size == 0

    def test_answer_telemetry_consistency(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        answer = server.answer(pipe.qo)
        assert answer.cloud_seconds >= 0
        assert answer.rs_size == sum(answer.star_stats.result_sizes.values())
        assert answer.join_stats.rin_size == len(answer.matches)
        assert len(answer.decomposition.stars) >= 1

    def test_rin_answer_expands_to_direct_matching(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        answer = server.answer(pipe.qo)
        expanded = {
            match_key(m)
            for m in pipe.transform.avt.expand_matches(answer.matches)
        }
        direct = {
            match_key(m) for m in find_subgraph_matches(pipe.qo, pipe.transform.gk)
        }
        assert expanded == direct


class TestAccounting:
    def test_index_accessors(self, figure1_pipeline):
        pipe = figure1_pipeline
        server = CloudServer(
            pipe.outsourced.graph,
            pipe.transform.avt,
            pipe.outsourced.block_vertices,
        )
        assert server.index_size_bytes() == server.index.size_bytes()
        assert server.index_build_seconds() == server.index.build_seconds
