"""Tests for incremental Go maintenance (GoDelta)."""

import pytest

from repro.anonymize import anonymize_query, build_lct, cost_based_grouping
from repro.cloud import CloudServer
from repro.exceptions import ProtocolError
from repro.graph import compute_statistics, example_social_network
from repro.kauto import AlignmentVertexTable, build_k_automorphic_graph
from repro.kauto.dynamic import DynamicRelease
from repro.matching import match_key
from repro.outsource.delta import GoDelta, apply_go_delta


@pytest.fixture
def live():
    graph, schema = example_social_network()
    lct = build_lct(
        schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph), seed=2
    )
    transform = build_k_automorphic_graph(lct.apply_to_graph(graph), 2, seed=1)
    release = DynamicRelease(graph.copy(), transform, lct)
    outsourced = release.refresh_outsourced()
    return release, outsourced, schema


def answers_match(release, patched, fresh, query, lct):
    """Cloud answers from the patched Go equal those from a fresh Go."""
    avt = release.avt
    anonymized = anonymize_query(query, lct)
    got_patched = {
        match_key(m)
        for m in CloudServer(patched.graph, avt, patched.block_vertices)
        .answer(anonymized)
        .matches
    }
    got_fresh = {
        match_key(m)
        for m in CloudServer(fresh.graph, avt, fresh.block_vertices)
        .answer(anonymized)
        .matches
    }
    return got_patched == got_fresh


class TestGoDelta:
    def test_edge_insert_delta_applies(self, live, figure1_query):
        release, outsourced, _ = live
        log = release.insert_edge(0, 3)
        delta = release.go_delta(log)
        assert not delta.is_empty
        apply_go_delta(outsourced, delta)
        fresh = release.refresh_outsourced()
        assert outsourced.graph.edge_set() == fresh.graph.edge_set()
        assert answers_match(release, outsourced, fresh, figure1_query, release.lct)

    def test_edge_delete_delta_applies(self, live, figure1_query):
        release, outsourced, _ = live
        insert_log = release.insert_edge(0, 3)
        apply_go_delta(outsourced, release.go_delta(insert_log))
        delete_log = release.delete_edge(0, 3)
        apply_go_delta(outsourced, release.go_delta(delete_log))
        fresh = release.refresh_outsourced()
        assert outsourced.graph.edge_set() == fresh.graph.edge_set()
        assert answers_match(release, outsourced, fresh, figure1_query, release.lct)

    def test_vertex_insert_extends_block_and_avt(self, live):
        release, outsourced, _ = live
        new_id = release.allocate_vertex_id()
        log = release.insert_vertex(new_id, "person", {"gender": ["male"]})
        delta = release.go_delta(log)
        assert delta.added_avt_rows
        apply_go_delta(outsourced, delta)
        assert new_id in outsourced.block_set
        # the cloud extends its AVT with the shipped rows
        rows = [list(r) for r in release.avt.rows()]
        cloud_avt = AlignmentVertexTable(rows)
        assert cloud_avt.block_of(new_id) == 0

    def test_connected_new_vertex_round_trip(self, live, figure1_query):
        release, outsourced, _ = live
        new_id = release.allocate_vertex_id()
        for log in (
            release.insert_vertex(new_id, "person", {"occupation": ["engineer"]}),
            release.insert_edge(new_id, 4),
            release.insert_edge(new_id, 6),
        ):
            apply_go_delta(outsourced, release.go_delta(log))
        fresh = release.refresh_outsourced()
        assert outsourced.graph.edge_set() == fresh.graph.edge_set()
        assert set(outsourced.block_vertices) == set(fresh.block_vertices)
        assert answers_match(release, outsourced, fresh, figure1_query, release.lct)

    def test_noop_log_gives_empty_delta(self, live):
        release, _, _ = live
        from repro.kauto.dynamic import UpdateLog

        delta = release.go_delta(UpdateLog())
        assert delta.is_empty

    def test_delta_smaller_than_full_upload(self, live):
        from repro.core.protocol import encode_upload

        release, outsourced, _ = live
        log = release.insert_edge(0, 3)
        delta = release.go_delta(log)
        full = len(encode_upload(release.refresh_outsourced().graph, release.avt))
        assert delta.payload_bytes() < full

    def test_delta_scales_with_update_not_graph(self):
        """On a larger graph the saving is where it matters."""
        from repro.core.protocol import encode_upload
        from repro.graph import compute_statistics, make_schema, random_attributed_graph

        schema = make_schema(2, 1, 10)
        graph = random_attributed_graph(schema, 300, edges_per_vertex=3, seed=4)
        lct = build_lct(
            schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph)
        )
        transform = build_k_automorphic_graph(lct.apply_to_graph(graph), 3, seed=4)
        release = DynamicRelease(graph.copy(), transform, lct)
        outsourced = release.refresh_outsourced()

        log = release.insert_edge(0, 5)
        delta = release.go_delta(log)
        apply_go_delta(outsourced, delta)
        full = len(encode_upload(release.refresh_outsourced().graph, release.avt))
        assert delta.payload_bytes() < full / 50
        assert outsourced.graph.edge_set() == release.refresh_outsourced().graph.edge_set()


class TestCloudServerDelta:
    def test_server_applies_delta_and_stays_exact(self, live, figure1_query):
        from repro.client import expand_rin, filter_candidates
        from repro.matching import find_subgraph_matches

        release, outsourced, _ = live
        server = CloudServer(
            outsourced.graph.copy(), release.avt, list(outsourced.block_vertices)
        )
        new_id = release.allocate_vertex_id()
        for log in (
            release.insert_vertex(new_id, "person", {"occupation": ["engineer"]}),
            release.insert_edge(new_id, 4),
            release.insert_edge(new_id, 6),
        ):
            server.apply_delta(release.go_delta(log))

        anonymized = anonymize_query(figure1_query, release.lct)
        answer = server.answer(anonymized)
        expanded = expand_rin(answer.matches, release.avt)
        got = {
            match_key(m)
            for m in filter_candidates(
                expanded.matches, release.original, figure1_query
            ).matches
        }
        oracle = {
            match_key(m)
            for m in find_subgraph_matches(figure1_query, release.original)
        }
        assert got == oracle

    def test_delta_rejected_on_bas_server(self, live):
        release, _, _ = live
        server = CloudServer(
            release.gk.copy(),
            release.avt,
            sorted(release.gk.vertex_ids()),
            expand_in_cloud=False,
        )
        from repro.outsource import GoDelta

        with pytest.raises(ValueError):
            server.apply_delta(GoDelta())

    def test_delta_clears_star_cache(self, live, figure1_query):
        release, outsourced, _ = live
        server = CloudServer(
            outsourced.graph.copy(),
            release.avt,
            list(outsourced.block_vertices),
            star_cache_size=32,
        )
        anonymized = anonymize_query(figure1_query, release.lct)
        server.answer(anonymized)
        assert len(server.star_cache) > 0
        log = release.insert_edge(0, 3)
        server.apply_delta(release.go_delta(log))
        assert len(server.star_cache) == 0


class TestDeltaWire:
    def test_payload_round_trip(self, live):
        release, _, _ = live
        log = release.insert_edge(0, 3)
        delta = release.go_delta(log)
        restored = GoDelta.from_payload(delta.to_payload())
        assert restored.added_edges == delta.added_edges
        assert restored.removed_edges == delta.removed_edges
        assert restored.added_block_vertices == delta.added_block_vertices

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            GoDelta.from_payload(b"{}")

    def test_unknown_vertex_in_edge_rejected(self, live):
        release, outsourced, _ = live
        delta = GoDelta(added_edges=[(0, 99_999)])
        with pytest.raises(ProtocolError):
            apply_go_delta(outsourced, delta)

    def test_missing_block_vertex_payload_rejected(self, live):
        release, outsourced, _ = live
        delta = GoDelta(added_block_vertices=[99_999])
        with pytest.raises(ProtocolError):
            apply_go_delta(outsourced, delta)
