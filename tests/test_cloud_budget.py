"""Unit tests for the cloud's per-query result budget (resource quota)."""

import pytest

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.exceptions import ResultBudgetExceeded
from repro.graph import example_query, example_social_network, make_schema, random_attributed_graph
from repro.workloads import random_walk_query


class TestBudgetEnforcement:
    def test_tiny_budget_trips(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, max_intermediate_results=1)
        )
        with pytest.raises(ResultBudgetExceeded) as exc_info:
            system.query(example_query())
        assert exc_info.value.budget == 1
        assert exc_info.value.size > 1
        assert exc_info.value.stage in ("star matching", "result join")

    def test_generous_budget_does_not_trip(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=2, max_intermediate_results=10_000)
        )
        outcome = system.query(example_query())
        assert len(outcome.matches) == 2

    def test_default_is_unlimited(self):
        config = SystemConfig()
        assert config.max_intermediate_results is None

    def test_budget_applies_to_bas_too(self):
        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph,
            schema,
            SystemConfig(
                k=2,
                method=MethodConfig.from_name("BAS"),
                max_intermediate_results=1,
            ),
        )
        with pytest.raises(ResultBudgetExceeded):
            system.query(example_query())

    def test_unselective_query_on_dense_graph_is_contained(self):
        """The motivating scenario: a label-free query on a dense Gk
        must fail fast with a quota error, not exhaust memory."""
        schema = make_schema(1, 1, 4)
        graph = random_attributed_graph(graph_schema := schema, 60, edges_per_vertex=4, seed=1)
        query = random_walk_query(graph, 6, seed=2, keep_label_probability=0.0)
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=4, max_intermediate_results=2_000)
        )
        with pytest.raises(ResultBudgetExceeded):
            system.query(query)
