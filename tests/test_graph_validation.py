"""Unit tests for graph/query validation helpers."""

import pytest

from repro.exceptions import QueryError, SchemaError
from repro.graph import (
    AttributedGraph,
    GraphSchema,
    assert_supergraph,
    validate_graph,
    validate_query,
)


def schema() -> GraphSchema:
    return GraphSchema.from_dict({"t": {"a": ["x", "y"]}})


class TestValidateGraph:
    def test_valid(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "t", {"a": ["x"]})
        validate_graph(graph, schema())

    def test_unknown_type(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "other")
        with pytest.raises(SchemaError):
            validate_graph(graph, schema())

    def test_unknown_label(self):
        graph = AttributedGraph()
        graph.add_vertex(0, "t", {"a": ["zzz"]})
        with pytest.raises(SchemaError):
            validate_graph(graph, schema())


class TestValidateQuery:
    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            validate_query(AttributedGraph())

    def test_disconnected_query_rejected(self):
        query = AttributedGraph()
        query.add_vertex(0, "t")
        query.add_vertex(1, "t")
        with pytest.raises(QueryError):
            validate_query(query)

    def test_single_vertex_query_allowed(self):
        query = AttributedGraph()
        query.add_vertex(0, "t")
        validate_query(query)

    def test_schema_violation_becomes_query_error(self):
        query = AttributedGraph()
        query.add_vertex(0, "t", {"a": ["bogus"]})
        with pytest.raises(QueryError):
            validate_query(query, schema())


class TestAssertSupergraph:
    def test_subgraph_passes(self, figure1_graph):
        bigger = figure1_graph.copy()
        bigger.add_vertex(100, "person")
        bigger.add_edge(100, 0)
        assert_supergraph(figure1_graph, bigger)

    def test_missing_vertex_fails(self, figure1_graph):
        small = figure1_graph.copy()
        small.add_vertex(100, "person")
        with pytest.raises(SchemaError):
            assert_supergraph(small, figure1_graph)

    def test_missing_edge_fails(self, figure1_graph):
        bigger = figure1_graph.copy()
        small = figure1_graph.copy()
        small.add_edge(4, 5)  # edge not in bigger
        with pytest.raises(SchemaError):
            assert_supergraph(small, bigger)
