"""Equivalence suite: the columnar pipeline is bit-identical to the
dict pipeline.

Every columnar kernel (Algorithm 1 star matching, the Algorithm 2 join
with and without anchor expansion, the AVT row expansion, the
Algorithm 3 client filter) is checked against its dict-based reference
implementation over randomly generated graphs, queries, ``k`` and
decompositions — same results, same order, same telemetry.  Budget and
empty-decomposition edge cases of the columnar path are covered at the
end.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymize import estimator_from_outsourced
from repro.client.expansion import expand_rin, expand_rin_table
from repro.client.filtering import ClientFilter
from repro.cloud import (
    CloudIndex,
    CloudServer,
    ShardedCloud,
    decompose_query,
    join_star_matches,
    join_star_matches_legacy,
    join_star_tables,
    match_all_stars,
    match_star,
    match_star_table,
)
from repro.cloud.cache import leaf_role_order, roles_to_table, table_to_roles
from repro.core.protocol import (
    NetworkChannel,
    encode_answer,
    encode_answer_table,
    encode_shard_tables,
)
from repro.exceptions import QueryError, ResultBudgetExceeded
from repro.graph import AttributedGraph, make_schema, random_attributed_graph
from repro.kauto import build_k_automorphic_graph
from repro.matching import MatchTable, star_of, vec
from repro.outsource import build_outsourced_graph
from repro.workloads import random_walk_query

#: The representation arms: tuple reference kernels, ``array('q')``
#: storage with tuple kernels, and (when installed) the numpy vector
#: kernels forced on regardless of input size.
ARMS = ("rows", "flat") + (("numpy",) if vec.HAVE_NUMPY else ())

EQUIV = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

PARAMS = dict(
    seed=st.integers(0, 10_000),
    n=st.integers(16, 40),
    k=st.integers(2, 4),
    edges=st.integers(1, 4),
)


def deployment(
    seed: int,
    n: int,
    k: int,
    edges: int,
    schema_shape: tuple[int, int, int] = (2, 1, 4),
) -> SimpleNamespace:
    """A random outsourced deployment plus a random query over it.

    ``schema_shape`` is ``(types, attributes, labels)``; ``(1, 1, 1)``
    produces the duplicate-label regime where every vertex carries the
    same type and the same single label group.
    """
    schema = make_schema(*schema_shape)
    graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
    query = random_walk_query(graph, edges, seed=seed + 1)
    transform = build_k_automorphic_graph(graph, k, seed=seed)
    outsourced = build_outsourced_graph(transform.gk, transform.avt)
    index = CloudIndex.build(outsourced.graph, outsourced.block_vertices)
    estimator = estimator_from_outsourced(
        outsourced.block_vertices, outsourced.graph, k
    )
    decomposition = decompose_query(query, estimator)
    return SimpleNamespace(
        graph=graph,
        query=query,
        avt=transform.avt,
        outsourced=outsourced,
        index=index,
        stars=decomposition.stars,
    )


class TestStarMatchingEquivalence:
    @EQUIV
    @given(**PARAMS)
    def test_table_kernel_bit_identical(self, seed, n, k, edges):
        dep = deployment(seed, n, k, edges)
        for star in dep.stars:
            legacy = match_star(dep.query, star, dep.index, dep.outsourced.graph)
            table = match_star_table(
                dep.query, star, dep.index, dep.outsourced.graph
            )
            assert table.schema == (star.center, *star.leaves)
            assert table.to_matches() == legacy  # same rows, same order

    @EQUIV
    @given(**PARAMS, use_vbv=st.booleans(), use_lbv=st.booleans())
    def test_index_ablation_flags_agree(self, seed, n, k, edges, use_vbv, use_lbv):
        dep = deployment(seed, n, k, edges)
        star = dep.stars[0]
        legacy = match_star(
            dep.query,
            star,
            dep.index,
            dep.outsourced.graph,
            use_vbv=use_vbv,
            use_lbv=use_lbv,
        )
        table = match_star_table(
            dep.query,
            star,
            dep.index,
            dep.outsourced.graph,
            use_vbv=use_vbv,
            use_lbv=use_lbv,
        )
        assert table.to_matches() == legacy

    def test_leafless_star(self, figure1_pipeline):
        """An isolated query vertex yields single-column rows."""
        pipe = figure1_pipeline
        index = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        query = AttributedGraph()
        data = pipe.qo.vertex(0)
        query.add_vertex(0, data.vertex_type, data.labels)
        star = star_of(query, 0)
        assert star.leaves == ()
        legacy = match_star(query, star, index, pipe.outsourced.graph)
        table = match_star_table(query, star, index, pipe.outsourced.graph)
        assert table.schema == (0,)
        assert table.to_matches() == legacy
        assert len(table) > 0


class TestJoinEquivalence:
    @EQUIV
    @given(**PARAMS, expand_anchor=st.booleans())
    def test_join_bit_identical(self, seed, n, k, edges, expand_anchor):
        dep = deployment(seed, n, k, edges)
        star_matches, _ = match_all_stars(
            dep.query, dep.stars, dep.index, dep.outsourced.graph
        )
        legacy, legacy_stats = join_star_matches_legacy(
            dep.stars, star_matches, dep.avt, expand_anchor=expand_anchor
        )
        columnar, stats = join_star_matches(
            dep.stars, star_matches, dep.avt, expand_anchor=expand_anchor
        )
        assert columnar == legacy  # same matches, same order
        assert stats.anchor_center == legacy_stats.anchor_center
        assert stats.intermediate_sizes == legacy_stats.intermediate_sizes
        assert stats.rin_size == legacy_stats.rin_size

    @EQUIV
    @given(**PARAMS)
    def test_unexpanded_join_bit_identical(self, seed, n, k, edges):
        """The BAS-style join (``expand=False``) agrees as well."""
        dep = deployment(seed, n, k, edges)
        star_matches, _ = match_all_stars(
            dep.query, dep.stars, dep.index, dep.outsourced.graph
        )
        legacy, _ = join_star_matches_legacy(
            dep.stars, star_matches, dep.avt, expand=False
        )
        columnar, _ = join_star_matches(
            dep.stars, star_matches, dep.avt, expand=False
        )
        assert columnar == legacy


class TestClientEquivalence:
    @EQUIV
    @given(**PARAMS)
    def test_expansion_and_filter_bit_identical(self, seed, n, k, edges):
        dep = deployment(seed, n, k, edges)
        star_matches, _ = match_all_stars(
            dep.query, dep.stars, dep.index, dep.outsourced.graph
        )
        rin, _ = join_star_matches_legacy(dep.stars, star_matches, dep.avt)
        schema = tuple(sorted(dep.query.vertex_ids()))
        rin_table = MatchTable.from_matches(rin, schema)

        legacy_exp = expand_rin(rin, dep.avt)
        table_exp = expand_rin_table(rin_table, dep.avt)
        assert table_exp.table.to_matches() == legacy_exp.matches
        assert table_exp.rin_size == legacy_exp.rin_size
        assert table_exp.rout_size == legacy_exp.rout_size

        flt = ClientFilter(dep.graph, dep.query)
        legacy_fr = flt.filter(legacy_exp.matches)
        table_fr = flt.filter_table(table_exp.table)
        assert table_fr.table.to_matches() == legacy_fr.matches
        assert table_fr.candidates == legacy_fr.candidates
        assert table_fr.dropped_vertex == legacy_fr.dropped_vertex
        assert table_fr.dropped_edge == legacy_fr.dropped_edge
        assert table_fr.dropped_label == legacy_fr.dropped_label

    @EQUIV
    @given(**PARAMS, limit=st.integers(0, 5))
    def test_filter_limit_agrees(self, seed, n, k, edges, limit):
        dep = deployment(seed, n, k, edges)
        star_matches, _ = match_all_stars(
            dep.query, dep.stars, dep.index, dep.outsourced.graph
        )
        rin, _ = join_star_matches_legacy(dep.stars, star_matches, dep.avt)
        schema = tuple(sorted(dep.query.vertex_ids()))
        candidates = expand_rin(rin, dep.avt).matches
        table = MatchTable.from_matches(candidates, schema)
        flt = ClientFilter(dep.graph, dep.query)
        assert flt.filter_table(table, limit=limit).table.to_matches() == (
            flt.filter(candidates, limit=limit).matches
        )


class TestServerEquivalence:
    @EQUIV
    @given(**PARAMS)
    def test_cloud_answer_table_matches_legacy_pipeline(self, seed, n, k, edges):
        """``CloudServer.answer`` (columnar end to end) equals the
        legacy match-then-join composition."""
        dep = deployment(seed, n, k, edges)
        server = CloudServer(
            dep.outsourced.graph,
            dep.avt,
            dep.outsourced.block_vertices,
        )
        answer = server.answer(dep.query)
        assert answer.table is not None
        star_matches, _ = match_all_stars(
            dep.query, dep.stars, dep.index, dep.outsourced.graph
        )
        legacy, _ = join_star_matches_legacy(dep.stars, star_matches, dep.avt)
        assert answer.table.to_matches() == legacy
        assert answer.matches == legacy  # the lazy dict view agrees


class TestAvtRowKernels:
    @EQUIV
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 40), k=st.integers(2, 4))
    def test_row_kernels_equal_match_kernels(self, seed, n, k):
        schema = make_schema(2, 1, 4)
        graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
        avt = build_k_automorphic_graph(graph, k, seed=seed).avt
        vids = sorted(avt.vertex_ids())[: 3 * k]
        rows = [tuple(vids[i : i + 2]) for i in range(0, len(vids) - 1, 2)]
        matches = [dict(enumerate(row)) for row in rows]
        for m in range(2 * k):
            remapped = avt.remap_rows(rows, m)
            assert remapped == [
                tuple(avt.apply_to_match(match, m)[q] for q in range(len(row)))
                for match, row in zip(matches, rows)
            ]
        expanded = avt.expand_rows(rows)
        assert [dict(enumerate(row)) for row in expanded] == (
            avt.expand_matches(matches)
        )
        noisy = rows + [(max(vids) + 10_000, vids[0])]
        assert avt.known_rows(noisy) == rows

    def test_remap_rejects_unknown_ids(self, figure1_pipeline):
        avt = figure1_pipeline.transform.avt
        with pytest.raises(KeyError):
            avt.remap_rows([(10**9,)], 1)


class TestColumnarEdgeCases:
    def test_star_budget_enforced_in_loop(self, figure1_pipeline):
        """Satellite: the quota trips *inside* the leaf assignment, so
        the overshoot is exactly one row — on both implementations."""
        pipe = figure1_pipeline
        index = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        star = next(
            s
            for s in (star_of(pipe.qo, c) for c in pipe.qo.vertex_ids())
            if len(match_star(pipe.qo, s, index, pipe.outsourced.graph)) > 1
        )
        for kernel in (match_star, match_star_table):
            with pytest.raises(ResultBudgetExceeded) as exc_info:
                kernel(pipe.qo, star, index, pipe.outsourced.graph, max_results=1)
            assert exc_info.value.stage == "star matching"
            assert exc_info.value.size == 2  # budget + 1, not a full center

    def test_join_budget_trips_columnar(self, figure1_pipeline):
        pipe = figure1_pipeline
        index = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        stars = [star_of(pipe.qo, c) for c in sorted(pipe.qo.vertex_ids())]
        tables = {
            s.center: match_star_table(pipe.qo, s, index, pipe.outsourced.graph)
            for s in stars
        }
        with pytest.raises(ResultBudgetExceeded) as exc_info:
            join_star_tables(stars, tables, pipe.transform.avt, max_intermediate=1)
        assert exc_info.value.stage == "result join"
        assert exc_info.value.size == 2  # enforced per emitted row

    def test_empty_decomposition_rejected(self, figure1_pipeline):
        avt = figure1_pipeline.transform.avt
        with pytest.raises(QueryError):
            join_star_tables([], {}, avt)

    def test_missing_star_table_rejected(self, figure1_pipeline):
        pipe = figure1_pipeline
        star = star_of(pipe.qo, 0)
        with pytest.raises(QueryError):
            join_star_tables([star], {}, pipe.transform.avt)

    def test_empty_star_table_short_circuits(self, figure1_pipeline):
        pipe = figure1_pipeline
        star = star_of(pipe.qo, 0)
        empty = MatchTable((star.center, *star.leaves))
        rin, stats = join_star_tables(
            [star], {star.center: empty}, pipe.transform.avt
        )
        assert len(rin) == 0
        assert stats.rin_size == 0
        assert stats.intermediate_sizes == [0]


# ----------------------------------------------------------------------
# three-way equivalence: dict vs tuple vs vector representations
# ----------------------------------------------------------------------
def table_pipeline(dep: SimpleNamespace) -> SimpleNamespace:
    """The full table pipeline under the *active* representation mode.

    Runs star matching, the join, the AVT expansion and the client
    filter, then snapshots everything an arm could disagree on: rows,
    telemetry counters, the cache codec's role tuples (and their JSON
    bytes), and the wire frames of both the shard scatter-gather and
    the final answer.
    """
    star_tables = {
        star.center: match_star_table(
            dep.query, star, dep.index, dep.outsourced.graph
        )
        for star in dep.stars
    }
    rin, stats = join_star_tables(dep.stars, star_tables, dep.avt)
    expanded = expand_rin_table(rin, dep.avt)
    filtered = ClientFilter(dep.graph, dep.query).filter_table(expanded.table)
    order = sorted(dep.query.vertex_ids())
    roles = {
        star.center: table_to_roles(
            star_tables[star.center], star, leaf_role_order(dep.query, star)
        )
        for star in dep.stars
    }
    return SimpleNamespace(
        star_rows={c: list(t.rows) for c, t in star_tables.items()},
        shard_frame=encode_shard_tables(star_tables),
        roles=roles,
        roles_bytes=json.dumps(roles, separators=(",", ":")).encode("utf-8"),
        rin_rows=list(rin.rows),
        rin_matches=rin.to_matches(),
        rin_size=stats.rin_size,
        intermediate_sizes=stats.intermediate_sizes,
        answer_frame=encode_answer_table(rin, list(order), True),
        expanded_rows=list(expanded.table.rows),
        rout_size=expanded.rout_size,
        filtered_schema=filtered.table.schema,
        filtered_rows=list(filtered.table.rows),
        drop_counters=(
            filtered.dropped_vertex,
            filtered.dropped_edge,
            filtered.dropped_label,
        ),
    )


def dict_reference(dep: SimpleNamespace) -> SimpleNamespace:
    """The dict-kernel pipeline (never touches the vec shim)."""
    star_matches, _ = match_all_stars(
        dep.query, dep.stars, dep.index, dep.outsourced.graph
    )
    rin, stats = join_star_matches_legacy(dep.stars, star_matches, dep.avt)
    expanded = expand_rin(rin, dep.avt)
    filtered = ClientFilter(dep.graph, dep.query).filter(expanded.matches)
    order = sorted(dep.query.vertex_ids())
    return SimpleNamespace(
        rin_matches=rin,
        rin_size=stats.rin_size,
        intermediate_sizes=stats.intermediate_sizes,
        answer_frame=encode_answer(rin, list(order), True),
        expanded_matches=expanded.matches,
        rout_size=expanded.rout_size,
        filtered_matches=filtered.matches,
        drop_counters=(
            filtered.dropped_vertex,
            filtered.dropped_edge,
            filtered.dropped_label,
        ),
    )


def assert_arms_identical(dep: SimpleNamespace) -> None:
    """Every representation arm is bit-identical to the dict pipeline
    and to every other arm — rows, order, telemetry, codec and wire
    bytes."""
    reference = dict_reference(dep)
    outputs = {}
    for arm in ARMS:
        with vec.override(arm):
            outputs[arm] = table_pipeline(dep)

    baseline = outputs["rows"]
    # the tuple arm reproduces the dict pipeline exactly, including the
    # answer frame bytes (encode_answer_table vs encode_answer)
    assert baseline.rin_matches == reference.rin_matches
    assert baseline.rin_size == reference.rin_size
    assert baseline.intermediate_sizes == reference.intermediate_sizes
    assert baseline.answer_frame == reference.answer_frame
    assert baseline.rout_size == reference.rout_size
    assert baseline.drop_counters == reference.drop_counters
    assert [
        dict(zip(baseline.filtered_schema, row))
        for row in baseline.filtered_rows
    ] == reference.filtered_matches

    # every other arm is byte-identical to the tuple arm
    for arm in ARMS[1:]:
        out = outputs[arm]
        assert out.star_rows == baseline.star_rows
        assert out.shard_frame == baseline.shard_frame
        assert out.roles == baseline.roles
        assert out.roles_bytes == baseline.roles_bytes
        assert out.rin_rows == baseline.rin_rows
        assert out.rin_size == baseline.rin_size
        assert out.intermediate_sizes == baseline.intermediate_sizes
        assert out.answer_frame == baseline.answer_frame
        assert out.expanded_rows == baseline.expanded_rows
        assert out.rout_size == baseline.rout_size
        assert out.filtered_rows == baseline.filtered_rows
        assert out.drop_counters == baseline.drop_counters


class TestThreeWayEquivalence:
    """Satellite: vectorized vs tuple vs dict, compared byte for byte.

    :data:`ARMS` pins each representation through
    :func:`repro.matching.vec.override`; the numpy arm forces the
    vector kernels regardless of input size, so even tiny hypothesis
    graphs exercise them.
    """

    @EQUIV
    @given(**PARAMS)
    def test_pipeline_arms_bit_identical(self, seed, n, k, edges):
        assert_arms_identical(deployment(seed, n, k, edges))

    @EQUIV
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(16, 32),
        k=st.integers(2, 3),
        edges=st.integers(1, 3),
    )
    def test_duplicate_label_graph_arms_agree(self, seed, n, k, edges):
        """Every vertex shares one type and one label group — maximal
        candidate sets and duplicate-heavy inverted lists."""
        assert_arms_identical(
            deployment(seed, n, k, edges, schema_shape=(1, 1, 1))
        )

    @EQUIV
    @given(**PARAMS, budget=st.integers(0, 4))
    def test_star_budget_outcome_identical(self, seed, n, k, edges, budget):
        """``max_results`` trips at the same row with the same telemetry
        in every arm — or no arm trips at all."""
        dep = deployment(seed, n, k, edges)

        def dict_outcome():
            try:
                matches = [
                    match_star(
                        dep.query,
                        star,
                        dep.index,
                        dep.outsourced.graph,
                        max_results=budget,
                    )
                    for star in dep.stars
                ]
            except ResultBudgetExceeded as exc:
                return ("raise", exc.stage, exc.size, exc.budget)
            return ("ok", matches)

        def table_outcome():
            try:
                tables = [
                    match_star_table(
                        dep.query,
                        star,
                        dep.index,
                        dep.outsourced.graph,
                        max_results=budget,
                    )
                    for star in dep.stars
                ]
            except ResultBudgetExceeded as exc:
                return ("raise", exc.stage, exc.size, exc.budget)
            return ("ok", [t.to_matches() for t in tables])

        reference = dict_outcome()
        for arm in ARMS:
            with vec.override(arm):
                assert table_outcome() == reference

    @EQUIV
    @given(**PARAMS, budget=st.integers(1, 4))
    def test_join_budget_outcome_identical(self, seed, n, k, edges, budget):
        dep = deployment(seed, n, k, edges)

        def outcome():
            tables = {
                star.center: match_star_table(
                    dep.query, star, dep.index, dep.outsourced.graph
                )
                for star in dep.stars
            }
            try:
                rin, stats = join_star_tables(
                    dep.stars, tables, dep.avt, max_intermediate=budget
                )
            except ResultBudgetExceeded as exc:
                return ("raise", exc.stage, exc.size, exc.budget)
            return ("ok", list(rin.rows), stats.intermediate_sizes)

        results = {}
        for arm in ARMS:
            with vec.override(arm):
                results[arm] = outcome()
        assert all(r == results["rows"] for r in results.values())

    def test_empty_tables_identical_across_arms(self, figure1_pipeline):
        """A star with zero matches flows through join, expansion and
        filter as an empty table in every arm, with identical frames."""
        pipe = figure1_pipeline
        index = CloudIndex.build(
            pipe.outsourced.graph, pipe.outsourced.block_vertices
        )
        query = AttributedGraph()
        query.add_vertex(0, "no-such-type", {})
        star = star_of(query, 0)
        frames = set()
        for arm in ARMS:
            with vec.override(arm):
                table = match_star_table(
                    query, star, index, pipe.outsourced.graph
                )
                assert len(table) == 0
                rin, stats = join_star_tables(
                    [star], {0: table}, pipe.transform.avt
                )
                assert len(rin) == 0
                assert stats.rin_size == 0
                expanded = expand_rin_table(rin, pipe.transform.avt)
                assert len(expanded.table) == 0
                filtered = ClientFilter(pipe.graph, query).filter_table(
                    expanded.table
                )
                assert len(filtered.table) == 0
                frames.add(encode_answer_table(rin, [0], True))
                frames.add(encode_shard_tables({0: table}))
        assert len(frames) == 2  # one answer frame + one shard frame

    @pytest.mark.parametrize("shards", [1, 4])
    def test_shard_topologies_arms_agree(self, shards):
        """1-shard and 4-shard scatter-gather return the single-server
        answer in every arm, with identical per-message wire sizes."""
        dep = deployment(21, 36, 2, 3)
        reference = CloudServer(
            dep.outsourced.graph, dep.avt, dep.outsourced.block_vertices
        ).answer(dep.query)
        wire_logs = []
        for arm in ARMS:
            with vec.override(arm):
                channel = NetworkChannel()
                with ShardedCloud(
                    dep.outsourced.graph,
                    dep.avt,
                    dep.outsourced.block_vertices,
                    shards=shards,
                    backend="serial",
                    channel=channel,
                ) as cloud:
                    answer = cloud.answer(dep.query)
                assert answer.table.schema == reference.table.schema
                assert answer.table.rows == reference.table.rows
                wire_logs.append(
                    [
                        (record.direction, record.payload_bytes)
                        for record in channel.transfers
                    ]
                )
        assert wire_logs, "no arms ran"
        assert all(log == wire_logs[0] for log in wire_logs[1:])
        assert wire_logs[0], "channel saw no shard traffic"

    @EQUIV
    @given(**PARAMS)
    def test_cache_codec_round_trips_in_every_arm(self, seed, n, k, edges):
        """``roles_to_table(table_to_roles(t))`` is ``t`` in every arm,
        and the role payload bytes never vary by representation."""
        dep = deployment(seed, n, k, edges)
        star = dep.stars[0]
        order = leaf_role_order(dep.query, star)
        payloads = set()
        for arm in ARMS:
            with vec.override(arm):
                table = match_star_table(
                    dep.query, star, dep.index, dep.outsourced.graph
                )
                roles = table_to_roles(table, star, order)
                restored = roles_to_table(roles, star, order)
                assert restored.schema == table.schema
                assert restored.rows == table.rows
                payloads.add(
                    json.dumps(roles, separators=(",", ":")).encode("utf-8")
                )
        assert len(payloads) == 1
