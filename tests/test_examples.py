"""Smoke tests: the lightweight examples run end to end."""

import runpy
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "exact matches R(Q, G): 2" in out
        assert "verified" in out

    def test_dynamic_social_graph(self, capsys):
        out = run_example("dynamic_social_graph.py", capsys)
        assert "day 0" in out and "day 2" in out
        assert "verified exact" in out

    def test_all_examples_compile(self):
        import py_compile

        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            py_compile.compile(str(path), doraise=True)
