"""Unit tests for the VF2-style subgraph matcher.

Includes a cross-check against networkx's GraphMatcher
(subgraph *monomorphisms* — the same non-induced semantics as
Definition 2) on random unlabeled graphs.
"""

import random

import networkx as nx
import pytest

from repro.exceptions import QueryError
from repro.graph import AttributedGraph, cycle_graph, grid_graph, star_graph
from repro.matching import (
    are_isomorphic,
    count_matches,
    find_subgraph_matches,
    has_subgraph_match,
    iter_subgraph_matches,
)


def path_graph(n: int, vertex_type: str = "t0") -> AttributedGraph:
    graph = AttributedGraph()
    for vid in range(n):
        graph.add_vertex(vid, vertex_type)
    for vid in range(n - 1):
        graph.add_edge(vid, vid + 1)
    return graph


class TestBasicMatching:
    def test_triangle_in_triangle_has_six_matches(self, triangle):
        # 3! automorphisms of a labeled-by-id triangle
        assert count_matches(triangle, triangle) == 6

    def test_edge_in_triangle(self, triangle):
        edge = path_graph(2)
        assert count_matches(edge, triangle) == 6  # 3 edges x 2 directions

    def test_path_in_cycle(self):
        assert count_matches(path_graph(3), cycle_graph(5)) == 10

    def test_no_match_when_query_larger(self, triangle):
        assert not has_subgraph_match(cycle_graph(4), triangle)

    def test_square_not_in_triangle_but_in_grid(self, triangle):
        square = cycle_graph(4)
        assert not has_subgraph_match(square, triangle)
        assert has_subgraph_match(square, grid_graph(2, 2))

    def test_non_induced_semantics(self):
        """A path of 3 must match inside a triangle (extra edge allowed)."""
        assert has_subgraph_match(path_graph(3), cycle_graph(3))

    def test_empty_query_rejected(self, triangle):
        with pytest.raises(QueryError):
            list(iter_subgraph_matches(AttributedGraph(), triangle))

    def test_limit(self, triangle):
        assert len(find_subgraph_matches(triangle, triangle, limit=2)) == 2

    def test_matches_are_injective(self, triangle):
        for match in find_subgraph_matches(path_graph(3), cycle_graph(4)):
            assert len(set(match.values())) == len(match)

    def test_candidate_filter(self, triangle):
        # anchor query vertex 0 onto data vertex 0 only
        matches = find_subgraph_matches(
            triangle, triangle, candidate_filter=lambda q, v: q != 0 or v == 0
        )
        assert len(matches) == 2
        assert all(m[0] == 0 for m in matches)


class TestTypedAndLabeledMatching:
    def test_type_mismatch_blocks(self):
        query = path_graph(2, vertex_type="a")
        data = path_graph(2, vertex_type="b")
        assert not has_subgraph_match(query, data)

    def test_label_containment(self):
        data = AttributedGraph()
        data.add_vertex(0, "t", {"a": ["x", "y"]})
        data.add_vertex(1, "t", {"a": ["x"]})
        data.add_edge(0, 1)

        query = AttributedGraph()
        query.add_vertex(0, "t", {"a": ["y"]})
        query.add_vertex(1, "t")
        query.add_edge(0, 1)

        matches = find_subgraph_matches(query, data)
        assert len(matches) == 1
        assert matches[0][0] == 0

    def test_figure1_matches(self, figure1_graph, figure1_query):
        matches = find_subgraph_matches(figure1_query, figure1_graph)
        assert len(matches) == 2
        # the two matches map q3 (school, Illinois) to s1 (vertex 6)
        assert all(m[2] == 6 for m in matches)
        # persons: (p1, p3) in both orders consistent with company types
        mapped_pairs = {(m[1], m[4]) for m in matches}
        assert mapped_pairs == {(0, 2), (1, 2)} or len(mapped_pairs) == 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("trial", range(8))
    def test_match_counts_equal_networkx_monomorphisms(self, trial):
        rng = random.Random(trial)
        n_data = rng.randint(6, 9)
        data_nx = nx.gnp_random_graph(n_data, 0.4, seed=trial)
        # random connected query: take a BFS tree edge sample
        query_n = rng.randint(2, 4)
        query_nx = nx.path_graph(query_n)
        if rng.random() < 0.5 and query_n >= 3:
            query_nx.add_edge(0, query_n - 1)  # close a cycle sometimes

        data = AttributedGraph()
        for v in data_nx.nodes:
            data.add_vertex(v, "t")
        for u, v in data_nx.edges:
            data.add_edge(u, v)
        query = AttributedGraph()
        for v in query_nx.nodes:
            query.add_vertex(v, "t")
        for u, v in query_nx.edges:
            query.add_edge(u, v)

        ours = count_matches(query, data)
        matcher = nx.algorithms.isomorphism.GraphMatcher(data_nx, query_nx)
        theirs = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert ours == theirs


class TestAreIsomorphic:
    def test_identical_graphs(self, triangle):
        assert are_isomorphic(triangle, triangle.copy())

    def test_relabeled_graphs(self):
        graph = grid_graph(2, 3)
        mapping = {v: v + 100 for v in graph.vertex_ids()}
        assert are_isomorphic(graph, graph.relabeled(mapping))

    def test_different_edge_counts(self):
        assert not are_isomorphic(path_graph(3), cycle_graph(3))

    def test_same_counts_different_structure(self):
        # star with 3 leaves vs path of 4: same |V|, |E|, different degrees
        assert not are_isomorphic(star_graph(3), path_graph(4))

    def test_disconnected_graphs(self):
        a = path_graph(2)
        a.add_vertex(10, "t0")
        a.add_vertex(11, "t0")
        a.add_edge(10, 11)
        b = path_graph(2)
        b.add_vertex(20, "t0")
        b.add_vertex(21, "t0")
        b.add_edge(20, 21)
        assert are_isomorphic(a, b)

    def test_empty_graphs(self):
        assert are_isomorphic(AttributedGraph(), AttributedGraph())

    def test_label_sensitive(self):
        a = AttributedGraph()
        a.add_vertex(0, "t", {"a": ["x"]})
        b = AttributedGraph()
        b.add_vertex(0, "t", {"a": ["y"]})
        assert not are_isomorphic(a, b)
