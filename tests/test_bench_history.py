"""Tests for benchmark result comparison."""

from repro.bench.history import (
    CellDelta,
    compare_results,
    format_comparison,
    load_results,
)


def make_dump(total_ms=10.0, rs=5, skipped=0):
    return {
        "datasets": {
            "DBpedia": {
                "cells": {
                    "EFF/k2/e4": {
                        "total_ms": total_ms,
                        "cloud_ms": total_ms * 0.5,
                        "client_ms": 0.1,
                        "rs": rs,
                        "rin": rs,
                        "answer_bytes": 100,
                        "skipped": skipped,
                    }
                }
            }
        }
    }


class TestCompare:
    def test_identical_runs_are_ok(self):
        comparison = compare_results(make_dump(), make_dump())
        assert comparison.ok
        assert comparison.cells_compared == 1
        assert comparison.regressions == []

    def test_time_regression_detected(self):
        comparison = compare_results(make_dump(total_ms=10.0), make_dump(total_ms=20.0))
        assert not comparison.ok
        assert any(d.metric == "total_ms" for d in comparison.regressions)

    def test_time_improvement_recorded(self):
        comparison = compare_results(make_dump(total_ms=20.0), make_dump(total_ms=5.0))
        assert comparison.ok
        assert any(d.metric == "total_ms" for d in comparison.improvements)

    def test_small_time_noise_tolerated(self):
        comparison = compare_results(make_dump(total_ms=10.0), make_dump(total_ms=12.0))
        assert comparison.ok

    def test_count_change_breaks_determinism(self):
        comparison = compare_results(make_dump(rs=5), make_dump(rs=6))
        assert not comparison.ok
        assert any(d.metric == "rs" for d in comparison.determinism_breaks)

    def test_missing_cells_are_skipped(self):
        baseline = make_dump()
        current = make_dump()
        current["datasets"]["DBpedia"]["cells"]["EFF/k9/e4"] = {"total_ms": 1.0}
        comparison = compare_results(baseline, current)
        assert comparison.cells_compared == 1

    def test_missing_dataset_skipped(self):
        baseline = {"datasets": {}}
        comparison = compare_results(baseline, make_dump())
        assert comparison.cells_compared == 0


class TestFormatting:
    def test_format_mentions_status(self):
        text = format_comparison(compare_results(make_dump(), make_dump()))
        assert "status: OK" in text

    def test_format_lists_regressions(self):
        text = format_comparison(
            compare_results(make_dump(total_ms=10.0), make_dump(total_ms=30.0))
        )
        assert "REGRESSIONS" in text
        assert "total_ms" in text
        assert "status: FAILED" in text

    def test_relative_change_zero_baseline(self):
        delta = CellDelta("d", "c", "m", baseline=0.0, current=0.0)
        assert delta.relative_change == 0.0
        delta = CellDelta("d", "c", "m", baseline=0.0, current=1.0)
        assert delta.relative_change == float("inf")


class TestRoundTrip:
    def test_load_results(self, tmp_path):
        import json

        path = tmp_path / "results.json"
        path.write_text(json.dumps(make_dump()))
        assert load_results(path) == make_dump()

    def test_script_end_to_end(self, tmp_path, capsys, monkeypatch):
        import json
        import sys
        from pathlib import Path

        scripts_dir = Path(__file__).resolve().parent.parent / "scripts"
        (tmp_path / "a.json").write_text(json.dumps(make_dump()))
        (tmp_path / "b.json").write_text(json.dumps(make_dump(total_ms=50.0)))
        sys.path.insert(0, str(scripts_dir))
        try:
            import compare_results as script
        finally:
            sys.path.pop(0)
        monkeypatch.setattr(
            sys,
            "argv",
            ["compare_results.py", str(tmp_path / "a.json"), str(tmp_path / "b.json")],
        )
        assert script.main() == 1
        assert "REGRESSIONS" in capsys.readouterr().out
