"""Tests for the structural attack library and the 1/k guarantee."""

import pytest

from repro.attacks import (
    degree_attack,
    extract_knowledge,
    neighborhood_attack,
    subgraph_attack,
    verify_attack_resistance,
)
from repro.graph import example_social_network
from repro.kauto import build_k_automorphic_graph


@pytest.fixture(scope="module", params=[2, 3])
def release(request):
    graph, _ = example_social_network()
    result = build_k_automorphic_graph(graph, request.param, seed=1)
    return graph, result


class TestAttacksOnOriginalGraph:
    """On the raw graph, attacks can succeed — that is the motivation."""

    def test_degree_attack_narrows_candidates(self, figure1_graph):
        result = degree_attack(figure1_graph, 0)  # p1 has degree 3
        assert 0 in result.candidates
        assert result.success_probability > 0

    def test_neighborhood_attack_can_fully_identify(self, figure1_graph):
        # some vertex in the running example is uniquely identifiable
        # from its 1-hop structure alone
        probabilities = [
            neighborhood_attack(figure1_graph, v).success_probability
            for v in figure1_graph.vertex_ids()
        ]
        assert max(probabilities) == 1.0

    def test_subgraph_attack_on_original(self, figure1_graph):
        knowledge, role = extract_knowledge(figure1_graph, 0, radius=1)
        result = subgraph_attack(figure1_graph, knowledge, role, 0)
        assert 0 in result.candidates


class TestAttacksOnPublishedGraph:
    """On Gk every attack is bounded by 1/k."""

    def test_degree_attack_bounded(self, release):
        _, result = release
        for vid in result.avt.vertex_ids():
            attack = degree_attack(result.gk, vid)
            assert attack.success_probability <= 1.0 / result.k + 1e-9
            # the whole symmetric group is always in the candidate set
            assert set(result.avt.symmetric_group(vid)) <= attack.candidates

    def test_neighborhood_attack_bounded(self, release):
        _, result = release
        for vid in result.avt.vertex_ids():
            attack = neighborhood_attack(result.gk, vid)
            assert attack.success_probability <= 1.0 / result.k + 1e-9
            assert set(result.avt.symmetric_group(vid)) <= attack.candidates

    def test_subgraph_attack_bounded(self, release):
        _, result = release
        probabilities = verify_attack_resistance(
            result.gk, result.avt, targets=sorted(result.avt.vertex_ids())[:6]
        )
        for probability in probabilities.values():
            assert probability <= 1.0 / result.k + 1e-9

    def test_two_hop_knowledge_still_bounded(self, release):
        _, result = release
        target = result.avt.first_block()[0]
        knowledge, role = extract_knowledge(result.gk, target, radius=2)
        attack = subgraph_attack(result.gk, knowledge, role, target)
        assert attack.success_probability <= 1.0 / result.k + 1e-9


class TestAttackBoundProperty:
    """Hypothesis: the 1/k bound holds on randomized releases."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(12, 40), k=st.integers(2, 4))
    def test_cheap_attacks_bounded_on_random_releases(self, seed, n, k):
        from repro.graph import make_schema, random_attributed_graph

        schema = make_schema(2, 1, 4)
        graph = random_attributed_graph(schema, n, edges_per_vertex=2, seed=seed)
        result = build_k_automorphic_graph(graph, k, seed=seed)
        for vid in list(result.avt.vertex_ids())[::5]:
            assert (
                degree_attack(result.gk, vid).success_probability <= 1.0 / k + 1e-9
            )
            assert (
                neighborhood_attack(result.gk, vid).success_probability
                <= 1.0 / k + 1e-9
            )


class TestHubFingerprintAttack:
    def test_honest_mode_bounded_on_published_graph(self, release):
        """Without pre-identified hubs (degree-class fingerprints), the
        1/k bound holds: twins share degree-class fingerprints."""
        from repro.attacks import hub_fingerprint_attack

        _, result = release
        for vid in list(result.avt.vertex_ids())[:8]:
            attack = hub_fingerprint_attack(result.gk, vid, hub_count=5)
            assert attack.success_probability <= 1.0 / result.k + 1e-9
            assert set(result.avt.symmetric_group(vid)) <= attack.candidates

    def test_seeded_mode_documents_the_limitation(self, release):
        """With oracle-identified hubs the attack CAN beat 1/k — the
        known seed-attack limitation of structural anonymization."""
        from repro.attacks import hub_fingerprint_attack

        _, result = release
        hubs = sorted(
            result.gk.vertex_ids(), key=lambda v: -result.gk.degree(v)
        )[:5]
        best = max(
            hub_fingerprint_attack(result.gk, vid, hubs=hubs).success_probability
            for vid in result.avt.vertex_ids()
        )
        # not asserted > 1/k (depends on the graph), but it may be:
        # the probability is only guaranteed to be a valid probability
        assert 0.0 <= best <= 1.0

    def test_can_identify_on_original(self, figure1_graph):
        from repro.attacks import hub_fingerprint_attack

        hubs = sorted(
            figure1_graph.vertex_ids(), key=lambda v: -figure1_graph.degree(v)
        )[:5]
        probabilities = [
            hub_fingerprint_attack(figure1_graph, v, hubs=hubs).success_probability
            for v in figure1_graph.vertex_ids()
        ]
        assert max(probabilities) == 1.0


class TestFriendshipAttack:
    def test_bounded_on_published_graph(self, release):
        from repro.attacks import friendship_attack

        _, result = release
        edges = sorted(result.gk.edges())[:10]
        for u, v in edges:
            attack = friendship_attack(result.gk, u, v)
            # every edge orbit has k copies, so >= k candidate endpoints
            assert len(attack.candidates) >= result.k
            assert attack.success_probability <= 1.0 / result.k + 1e-9

    def test_non_edge_rejected(self, figure1_graph):
        from repro.attacks import friendship_attack
        from repro.exceptions import VerificationError

        with pytest.raises(VerificationError):
            friendship_attack(figure1_graph, 0, 7)


class TestLabelInference:
    def make_lct_and_stats(self, frequencies):
        from repro.anonymize import LabelCorrespondenceTable
        from repro.graph import AttributedGraph, compute_statistics

        graph = AttributedGraph()
        vid = 0
        for label, count in frequencies.items():
            for _ in range(count):
                graph.add_vertex(vid, "t", {"a": [label]})
                vid += 1
        lct = LabelCorrespondenceTable(theta=2)
        labels = sorted(frequencies)
        lct.add_group("t", "a", labels[:2])
        if len(labels) > 2:
            lct.add_group("t", "a", labels[2:])
        return lct, compute_statistics(graph)

    def test_balanced_group_reaches_ideal(self):
        from repro.attacks import ideal_risk, label_disclosure_risk

        lct, stats = self.make_lct_and_stats({"a": 5, "b": 5, "c": 5, "d": 5})
        risk = label_disclosure_risk(lct, stats)
        assert risk.worst == pytest.approx(ideal_risk(2))

    def test_skewed_group_leaks_more(self):
        from repro.attacks import label_disclosure_risk

        lct, stats = self.make_lct_and_stats({"a": 9, "b": 1, "c": 5, "d": 5})
        risk = label_disclosure_risk(lct, stats)
        # group {a, b}: posterior of a = 0.9
        assert risk.worst == pytest.approx(0.9)
        assert risk.mean < risk.worst

    def test_posterior_normalizes(self):
        from repro.attacks import group_posterior

        lct, stats = self.make_lct_and_stats({"a": 3, "b": 7})
        gid = lct.group_ids()[0]
        posterior = group_posterior(lct, gid, stats)
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_zero_mass_group_uniform(self):
        from repro.anonymize import LabelCorrespondenceTable
        from repro.attacks import group_posterior
        from repro.graph import AttributedGraph, compute_statistics

        lct = LabelCorrespondenceTable(theta=2)
        gid = lct.add_group("t", "a", ["x", "y"])
        stats = compute_statistics(AttributedGraph())
        posterior = group_posterior(lct, gid, stats)
        assert posterior == {"x": 0.5, "y": 0.5}


class TestMultiReleaseIntersection:
    def test_independent_releases_degrade_privacy(self):
        """Two independent k=2 releases: intersecting candidate sets
        shrinks some target's anonymity set below k."""
        from repro.attacks import multi_release_intersection
        from repro.graph import make_schema, random_attributed_graph

        schema = make_schema(1, 1, 4)
        graph = random_attributed_graph(schema, 60, edges_per_vertex=2, seed=8)
        releases = [
            build_k_automorphic_graph(graph, 2, seed=seed).gk for seed in (1, 2, 3)
        ]
        degraded = 0
        for target in list(graph.vertex_ids())[:20]:
            result = multi_release_intersection(releases, target)
            assert target in result.candidates  # the target always survives
            if result.success_probability > 0.5:
                degraded += 1
        assert degraded > 0  # the hazard is real on independent releases

    def test_dynamic_release_does_not_degrade(self, figure1):
        """One continuous DynamicRelease: successive views share the
        AVT, so intersections never beat 1/k."""
        from repro.anonymize import build_lct, cost_based_grouping
        from repro.attacks import multi_release_intersection
        from repro.graph import compute_statistics
        from repro.kauto.dynamic import DynamicRelease

        graph, schema = figure1
        lct = build_lct(
            schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph)
        )
        transform = build_k_automorphic_graph(lct.apply_to_graph(graph), 2, seed=1)
        release = DynamicRelease(graph.copy(), transform, lct)

        views = [release.gk.copy("view0")]
        release.insert_edge(0, 3)
        views.append(release.gk.copy("view1"))
        release.delete_edge(0, 3)
        views.append(release.gk.copy("view2"))

        k = transform.k
        for target in graph.vertex_ids():
            # attack each view the adversary observed over time
            result = multi_release_intersection(views, target)
            assert result.success_probability <= 1.0 / k + 1e-9

    def test_empty_release_list(self):
        from repro.attacks import multi_release_intersection

        result = multi_release_intersection([], target=0)
        assert result.candidates == set()
        assert result.success_probability == 0.0


class TestKnowledgeExtraction:
    def test_ball_radius_one(self, figure1_graph):
        knowledge, role = extract_knowledge(figure1_graph, 0, radius=1)
        # p1's ball: itself + 3 neighbours
        assert knowledge.vertex_count == 4
        assert knowledge.degree(role) == 3

    def test_labels_stripped_by_default(self, figure1_graph):
        knowledge, _ = extract_knowledge(figure1_graph, 0, radius=1)
        assert all(not d.labels for d in knowledge.vertices())

    def test_labels_kept_on_request(self, figure1_graph):
        knowledge, _ = extract_knowledge(figure1_graph, 0, radius=1, with_labels=True)
        assert any(d.labels for d in knowledge.vertices())

    def test_empty_candidates_probability_zero(self):
        from repro.attacks import AttackResult

        assert AttackResult(target=1, candidates=set()).success_probability == 0.0
        assert AttackResult(target=1, candidates={2, 3}).success_probability == 0.0
