"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, which
breaks PEP 517 editable installs; keeping a setup.py (and omitting the
``[build-system]`` table in pyproject.toml) lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
