#!/usr/bin/env python3
"""One-command reproduction: run the full evaluation, write a report.

Runs the same sweep the `benchmarks/` harness uses (publish-time
metrics, query sweeps over methods × k × |E(Q)|, attack resistance)
and writes a self-contained Markdown report plus a machine-readable
JSON dump.

Usage:
    python scripts/run_evaluation.py [--out results/] [--scale 0.25]
                                     [--queries 10] [--ks 2,3,5]
                                     [--sizes 4,6,12]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.attacks import neighborhood_attack
from repro.bench import ExperimentContext, format_series, format_table, ms
from repro.workloads import DATASETS

METHODS = ("EFF", "RAN", "FSIM", "BAS")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--queries", type=int, default=10)
    parser.add_argument("--ks", default="2,3,5")
    parser.add_argument("--sizes", default="4,6,12")
    parser.add_argument(
        "--datasets", default=",".join(sorted(DATASETS)), help="comma separated"
    )
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    ks = [int(x) for x in args.ks.split(",")]
    sizes = [int(x) for x in args.sizes.split(",")]
    dataset_names = [d.strip() for d in args.datasets.split(",") if d.strip()]
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    sections: list[str] = [
        "# Evaluation report",
        f"scale={args.scale}, queries/cell={args.queries}, ks={ks}, sizes={sizes}",
    ]
    dump: dict = {"config": vars(args), "datasets": {}}
    started = time.time()

    for dataset_name in dataset_names:
        print(f"== {dataset_name} ==", flush=True)
        context = ExperimentContext.for_dataset(dataset_name, scale=args.scale)
        entry: dict = {"publish": {}, "cells": {}, "attacks": {}}

        # publish-time metrics (figures 10-12 equivalents)
        publish_rows = []
        for k in ks:
            system = context.system("EFF", k)
            metrics = system.publish_metrics
            publish_rows.append(
                [
                    k,
                    metrics.noise_edges,
                    metrics.uploaded_edges,
                    metrics.gk_edges,
                    round(metrics.upload_bytes / 1024, 1),
                    round(metrics.index_bytes / 1024, 2),
                ]
            )
            entry["publish"][k] = {
                "noise_edges": metrics.noise_edges,
                "go_edges": metrics.uploaded_edges,
                "gk_edges": metrics.gk_edges,
                "upload_bytes": metrics.upload_bytes,
                "index_bytes": metrics.index_bytes,
            }
        sections.append(
            format_table(
                ["k", "noise E", "|E(Go)|", "|E(Gk)|", "upload KiB", "index KiB"],
                publish_rows,
                title=f"## publish-time (EFF) — {dataset_name}",
            )
        )

        # query sweep (figures 14-22 equivalents)
        for k in ks:
            series = {}
            for method in METHODS:
                cells = []
                for size in sizes:
                    aggregate = context.run(method, k, size, args.queries)
                    cells.append(ms(aggregate.total_seconds))
                    entry["cells"][f"{method}/k{k}/e{size}"] = {
                        "total_ms": ms(aggregate.total_seconds),
                        "cloud_ms": ms(aggregate.cloud_seconds),
                        "client_ms": ms(aggregate.client_seconds),
                        "rs": aggregate.rs_size,
                        "rin": aggregate.rin_size,
                        "answer_bytes": aggregate.answer_bytes,
                        "skipped": aggregate.skipped,
                    }
                series[method] = cells
            sections.append(
                format_series(
                    f"## end-to-end time (ms) — {dataset_name}, k={k}",
                    "|E(Q)|",
                    sizes,
                    series,
                )
            )

        # attack resistance (1/k bound)
        attack_rows = []
        for k in ks:
            gk = context.system("EFF", k).published.transform.gk
            worst = max(
                neighborhood_attack(gk, target).success_probability
                for target in sorted(gk.vertex_ids())[:100]
            )
            attack_rows.append([k, round(worst, 4), round(1.0 / k, 4)])
            entry["attacks"][k] = worst
        sections.append(
            format_table(
                ["k", "worst 1-hop attack", "bound 1/k"],
                attack_rows,
                title=f"## attack resistance — {dataset_name}",
            )
        )
        dump["datasets"][dataset_name] = entry

    dump["elapsed_seconds"] = time.time() - started
    report = "\n\n".join(sections) + "\n"
    (out_dir / "report.md").write_text(report)
    (out_dir / "results.json").write_text(json.dumps(dump, indent=2))
    print(report)
    print(f"wrote {out_dir}/report.md and {out_dir}/results.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
