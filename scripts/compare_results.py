#!/usr/bin/env python3
"""Compare two evaluation dumps for regressions.

Usage:
    python scripts/compare_results.py baseline/results.json new/results.json

Exit status 0 when no regressions or determinism breaks were found.
"""

from __future__ import annotations

import argparse

from repro.bench.history import compare_results, format_comparison, load_results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="results.json of the baseline run")
    parser.add_argument("current", help="results.json of the run under test")
    args = parser.parse_args()

    comparison = compare_results(
        load_results(args.baseline), load_results(args.current)
    )
    print(format_comparison(comparison))
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
