#!/usr/bin/env python
"""One-shot local gate: ruff + mypy + ``repro lint`` + the tier-1 suite.

Runs the same checks CI runs, in the same order, from one command:

    python scripts/check.py

Tools that are not installed in the current environment (ruff and mypy
are optional developer installs) are *skipped with a notice* rather
than failing the gate -- the offline evaluation container has neither,
while CI installs both.  The invariant linter and the tier-1 test
suite are always available (they only need the package itself) and are
always run.

Exit status is non-zero iff any executed step failed.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: each step: (label, argv, required_tool or None)
STEPS: list[tuple[str, list[str], str | None]] = [
    (
        "ruff (style + imports + bugbear)",
        ["ruff", "check", "src", "tests", "benchmarks", "scripts"],
        "ruff",
    ),
    (
        "mypy (typed core: repro.core, repro.cloud, repro.obs)",
        ["mypy"],
        "mypy",
    ),
    (
        # picks up new rules and the checked-in .lint-baseline.json
        # automatically (cwd is the repo root); gates on severity>=error
        "repro lint (invariants R1-R8: imports, names, locks, hot path, "
        "deprecations, taint, async, protocol)",
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            "src",
            "tests",
            "benchmarks",
            "--fail-on",
            "error",
        ],
        None,
    ),
    (
        "tier-1 test suite",
        [sys.executable, "-m", "pytest", "-x", "-q"],
        None,
    ),
]


def main() -> int:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures: list[str] = []
    skipped: list[str] = []
    for label, argv, tool in STEPS:
        print(f"==> {label}")
        if tool is not None and shutil.which(tool) is None:
            print(f"    skipped: {tool!r} is not installed\n")
            skipped.append(label)
            continue
        proc = subprocess.run(argv, cwd=REPO, env=env)
        if proc.returncode != 0:
            print(f"    FAILED (exit {proc.returncode})\n")
            failures.append(label)
        else:
            print("    ok\n")

    ran = len(STEPS) - len(skipped)
    if failures:
        print(f"check: {len(failures)}/{ran} step(s) failed:")
        for label in failures:
            print(f"  - {label}")
        return 1
    note = f" ({len(skipped)} skipped)" if skipped else ""
    print(f"check: all {ran} step(s) passed{note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
